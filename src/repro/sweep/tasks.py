"""The sweep task registry: named cell evaluators.

Each task is a function ``(cell: Cell) -> dict`` mapping one grid cell to a
JSON-serializable payload.  Payloads must be *deterministic* — a function of
the cell alone, with no wall-clock or machine-dependent values — because the
runner's parity guarantee (serial and parallel evaluation of the same grid
merge byte-identically) rests on it.  Timing lives in the runner's
:class:`~repro.sweep.runner.CellResult`, never in the payload.

Conventions shared by the built-in tasks:

* ``stats`` — the simulator :class:`~repro.congest.network.RunStats` as a
  plain dict (see :func:`stats_to_json`); the runner re-aggregates these
  with ``RunStats.__add__`` per word size.
* ``signature`` — a short hex digest of the solution, used by differential
  checks (engine v1 vs v2 parity at benchmark scale) without shipping the
  full solution between processes.
* per-cell engine selection — ``cell.engine`` is passed straight to the
  solver / network constructor, so one grid can mix ``v1`` and ``v2`` cells.

New tasks register with :func:`register_task`; the registry is module-level
state, so tasks defined in test or benchmark modules are visible to
``multiprocessing`` workers under the default ``fork`` start method (and to
``spawn`` workers as long as the defining module is imported on both sides).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from collections.abc import Callable, Iterable
from typing import Any

from repro.congest.network import CongestNetwork, RunStats
from repro.sweep.spec import Cell

TaskFn = Callable[[Cell], dict[str, Any]]

_REGISTRY: dict[str, TaskFn] = {}

#: Tasks that build their workload graph through :func:`_cell_graph` and
#: therefore benefit from the shared graph cache (see below).
_GRAPH_TASKS: set[str] = set()

#: ``graph_cache_key -> built graph``.  Populated by
#: :func:`prewarm_graph_cache` in the sweep parent before any cell runs;
#: pool workers receive it once (inherited under ``fork``, shipped through
#: the pool initializer under ``spawn``), so repeated cells stop paying
#: graph-generation cost.  Cached graphs are shared read-only: tasks must
#: not mutate the graph they are handed (none of the built-ins do — they
#: derive new graphs like ``square(graph)`` instead).
_GRAPH_CACHE: dict[tuple[Any, ...], Any] = {}


def register_task(
    name: str, *, graph_cache: bool = False
) -> Callable[[TaskFn], TaskFn]:
    """Decorator registering ``fn`` as the evaluator for task ``name``.

    ``graph_cache=True`` declares that the task builds its graph via
    :func:`_cell_graph`, letting the sweep runner prewarm the shared graph
    cache for its cells.
    """

    def deco(fn: TaskFn) -> TaskFn:
        if name in _REGISTRY:
            raise ValueError(f"task {name!r} already registered")
        _REGISTRY[name] = fn
        if graph_cache:
            _GRAPH_TASKS.add(name)
        return fn

    return deco


def get_task(name: str) -> TaskFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep task {name!r}; known tasks: {task_names()}"
        ) from None


def task_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def stats_to_json(stats: RunStats) -> dict[str, int]:
    return {
        "rounds": stats.rounds,
        "messages": stats.messages,
        "total_words": stats.total_words,
        "max_words_per_edge_round": stats.max_words_per_edge_round,
        "cut_words": stats.cut_words,
        "word_bits": stats.word_bits,
    }


def stats_from_json(data: dict[str, int]) -> RunStats:
    return RunStats(**data)


def signature_of(items: Iterable[Any]) -> str:
    """Order-independent digest of a solution set."""
    canon = ",".join(sorted(repr(x) for x in items))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


#: Tasks that honor the ``metrics`` cell param by embedding a
#: :class:`repro.metrics.MetricsCollector` document in their payload.
METRICS_TASKS: frozenset[str] = frozenset(
    {"mvc-congest", "mds-congest", "mpc-mvc", "mpc-mds", "mpc-matching"}
)


def _compress_of(cell: Cell) -> int | str:
    """A cell's shuffle-compression setting: an int window or ``"auto"``.

    Cell params are JSON scalars, so ``"auto"`` arrives as a plain string;
    anything else is coerced to the integer window the compiler expects.
    """
    compress = cell.param("compress", 1)
    if compress == "auto":
        return "auto"
    return int(compress)


def _workers_of(cell: Cell) -> int | None:
    """A cell's MPC shard-worker count, or ``None`` to use the default.

    ``None`` lets the network resolve the count from ``REPRO_MPC_WORKERS``
    (then 1), which is how named grids run parallel without changing cell
    coordinates.  The payload is identical at any value — worker count is
    an execution detail, not a workload axis — so it never enters the
    payload digests the runner compares.
    """
    workers = cell.param("mpc_workers")
    return None if workers is None else int(workers)


def _faults_of(cell: Cell) -> str | None:
    """A cell's fault-injection spec string, or ``None`` for fault-free.

    Like worker count, faults are an execution-environment detail: the
    recovery contract pins the ledger byte-identical with and without
    them, so the spec never enters the metrics label.  The fault/recovery
    *report* rides in the payload but records execution (whether an event
    fired depends on the worker count), so ``CellResult.to_json`` scopes
    it out of the deterministic digest along with the timings.
    """
    faults = cell.param("faults")
    return None if faults is None else str(faults)


#: Cell coordinates that select a backend variant rather than a workload;
#: they must stay out of the metrics label, which sits inside the
#: deterministic section and therefore must be byte-identical across
#: engines, compression windows, worker counts and fault plans on the
#: same workload.
_VARIANT_PARAMS = frozenset(
    {"compress", "parity", "metrics", "mpc_workers", "faults"}
)


def _metrics_label(cell: Cell) -> str:
    parts = [cell.task, cell.graph, f"n={cell.n}", f"seed={cell.seed}"]
    if cell.eps is not None:
        parts.append(f"eps={cell.eps:g}")
    parts.extend(
        f"{k}={v}" for k, v in cell.params if k not in _VARIANT_PARAMS
    )
    return "/".join(parts)


def _cell_collector(cell: Cell):
    """The cell's metrics collector (``metrics`` param), or ``None``."""
    if not cell.param("metrics"):
        return None
    from repro.metrics import MetricsCollector

    return MetricsCollector(label=_metrics_label(cell))


def graph_cache_key(cell: Cell) -> tuple[Any, ...] | None:
    """Cache key of the graph a cell would build, or None if uncacheable.

    Keys are exactly the :func:`~repro.graphs.generators.build_graph`
    coordinates — ``(kind, n, seed, params)`` — so two cells that differ
    only in solver-side axes (engine, eps, samples, replicate-independent
    seeds with an explicit ``graph_seed``) share one built graph.
    """
    if cell.task not in _GRAPH_TASKS:
        return None
    return (
        cell.graph,
        cell.n,
        cell.param("graph_seed", cell.seed),
        cell.param("gnp_p"),
    )


def prewarm_graph_cache(cells: Iterable[Cell]) -> int:
    """Build (once) every distinct graph the given cells will request.

    Returns the number of graphs *newly built* into the cache.  Called by
    the sweep runner in the parent process before evaluation starts, so
    pool workers never regenerate a graph the parent already built.  A
    kind the generator rejects is skipped silently — the owning cell will
    raise the real error (captured per cell) when it actually runs — but
    a :class:`TimeoutError` propagates: it means the runner's prewarm
    budget expired, not that a cell is unbuildable.
    """
    from repro.graphs.generators import build_graph

    built = 0
    for cell in cells:
        key = graph_cache_key(cell)
        if key is None or key in _GRAPH_CACHE:
            continue
        kind, n, seed, p = key
        try:
            _GRAPH_CACHE[key] = build_graph(kind, n, seed=seed, p=p)
        except TimeoutError:
            raise
        except Exception:
            continue
        built += 1
    return built


def export_graph_cache() -> dict[tuple[Any, ...], Any]:
    """Snapshot of the graph cache, for shipping to ``spawn`` workers."""
    return dict(_GRAPH_CACHE)


def install_graph_cache(graphs: dict[tuple[Any, ...], Any]) -> None:
    """Install a parent-exported cache in this (worker) process."""
    _GRAPH_CACHE.update(graphs)


def clear_graph_cache() -> None:
    """Drop all cached graphs (tests and memory-conscious callers)."""
    _GRAPH_CACHE.clear()


def _cell_graph(cell: Cell):
    from repro.graphs.generators import build_graph

    key = graph_cache_key(cell)
    if key is not None:
        graph = _GRAPH_CACHE.get(key)
        if graph is not None:
            return graph
    p = cell.param("gnp_p")
    graph_seed = cell.param("graph_seed", cell.seed)
    graph = build_graph(cell.graph, cell.n, seed=graph_seed, p=p)
    if key is not None:
        _GRAPH_CACHE[key] = graph
    return graph


# -- cover / dominating-set solvers ---------------------------------------


@register_task("mvc-congest", graph_cache=True)
def _mvc_congest(cell: Cell) -> dict[str, Any]:
    """Algorithm 1 ((1+eps)-MVC of G^2) on the CONGEST simulator."""
    from repro.core.mvc_congest import approx_mvc_square
    from repro.graphs.power import square
    from repro.graphs.validation import assert_vertex_cover

    eps = 0.5 if cell.eps is None else cell.eps
    graph = _cell_graph(cell)
    collector = _cell_collector(cell)
    if collector is not None:
        network = CongestNetwork(graph, seed=cell.seed, engine=cell.engine)
        collector.attach(network)
        result = approx_mvc_square(graph, eps, network=network)
    else:
        result = approx_mvc_square(
            graph, eps, seed=cell.seed, engine=cell.engine
        )
    sq = square(graph)
    assert_vertex_cover(sq, result.cover)
    payload: dict[str, Any] = {
        "cover_size": len(result.cover),
        "stats": stats_to_json(result.stats),
        "signature": signature_of(result.cover),
    }
    if collector is not None:
        payload["metrics"] = collector.to_json()
    if cell.param("exact"):
        from repro.exact.vertex_cover import minimum_vertex_cover

        opt = len(minimum_vertex_cover(sq))
        payload["opt"] = opt
        payload["ratio"] = len(result.cover) / opt
    return payload


@register_task("mvc-clique-det", graph_cache=True)
def _mvc_clique_det(cell: Cell) -> dict[str, Any]:
    """Deterministic congested-clique MVC (Theorem 24)."""
    from repro.core.mvc_clique import approx_mvc_square_clique_deterministic
    from repro.graphs.power import square
    from repro.graphs.validation import assert_vertex_cover

    eps = 0.5 if cell.eps is None else cell.eps
    graph = _cell_graph(cell)
    result = approx_mvc_square_clique_deterministic(
        graph, eps, seed=cell.seed, engine=cell.engine
    )
    assert_vertex_cover(square(graph), result.cover)
    return {
        "cover_size": len(result.cover),
        "stats": stats_to_json(result.stats),
        "signature": signature_of(result.cover),
    }


@register_task("mds-congest", graph_cache=True)
def _mds_congest(cell: Cell) -> dict[str, Any]:
    """Theorem 28 (O(log Delta)-MDS of G^2) on the CONGEST simulator."""
    from repro.core.mds_congest import approx_mds_square
    from repro.graphs.power import square
    from repro.graphs.validation import assert_dominating_set

    graph = _cell_graph(cell)
    collector = _cell_collector(cell)
    if collector is not None:
        network = CongestNetwork(graph, seed=cell.seed, engine=cell.engine)
        collector.attach(network)
        result = approx_mds_square(graph, network=network)
    else:
        result = approx_mds_square(graph, seed=cell.seed, engine=cell.engine)
    sq = square(graph)
    assert_dominating_set(sq, result.cover)
    payload: dict[str, Any] = {
        "cover_size": len(result.cover),
        "phases": result.detail["phases"],
        "max_degree": max(d for _, d in graph.degree),
        "stats": stats_to_json(result.stats),
        "signature": signature_of(result.cover),
    }
    if collector is not None:
        payload["metrics"] = collector.to_json()
    if cell.param("exact"):
        from repro.exact.dominating_set import minimum_dominating_set

        opt = len(minimum_dominating_set(sq))
        payload["opt"] = opt
        payload["ratio"] = len(result.cover) / opt
    return payload


@register_task("mds-estimator", graph_cache=True)
def _mds_estimator(cell: Cell) -> dict[str, Any]:
    """Lemma 29 two-hop-size estimator concentration on one graph."""
    from repro.core.estimation import estimate_neighborhood_sizes
    from repro.graphs.power import two_hop_neighbors

    graph = _cell_graph(cell)
    samples = int(cell.param("samples", 32))
    net = CongestNetwork(graph, seed=cell.seed, engine=cell.engine)
    estimates, result = estimate_neighborhood_sizes(
        net, members=list(graph.nodes), samples=samples
    )
    truth = {
        v: len(two_hop_neighbors(graph, v) | {v}) for v in graph.nodes
    }
    errors = [abs(estimates[v] - truth[v]) / truth[v] for v in graph.nodes]
    return {
        "samples": samples,
        "max_rel_err": max(errors),
        "mean_rel_err": sum(errors) / len(errors),
        "stats": stats_to_json(result.stats),
        "signature": signature_of(sorted(estimates.items())),
    }


# -- low-space MPC backend tasks ------------------------------------------


@register_task("mpc-mvc", graph_cache=True)
def _mpc_mvc(cell: Cell) -> dict[str, Any]:
    """Algorithm 1 compiled onto the MPC backend.

    One shuffle per CONGEST round classically; with a ``compress`` param
    ``> 1`` the compiler batches up to that many rounds behind each
    prefetch shuffle (adaptively, falling back where the frontier exceeds
    the window budget).  With ``params=(("parity", True),)`` the cell also
    runs an engine-v2 shadow and asserts word-for-word metering parity
    (outputs, RunStats, per-round event stream).  The congest-level
    ``stats`` payload is byte-identical to the ``mvc-congest`` task's on
    the same cell coordinates — at every ``compress`` — which is what
    ``bench_mpc.py`` checks.
    """
    from repro.graphs.power import square
    from repro.graphs.validation import assert_vertex_cover
    from repro.mpc.compile_congest import solve_mvc_mpc

    eps = 0.5 if cell.eps is None else cell.eps
    alpha = float(cell.param("alpha", 0.8))
    graph = _cell_graph(cell)
    collector = _cell_collector(cell)
    result, mpc = solve_mvc_mpc(
        graph,
        eps,
        alpha=alpha,
        seed=cell.seed,
        check_parity=bool(cell.param("parity", False)),
        compress=_compress_of(cell),
        collector=collector,
        workers=_workers_of(cell),
        faults=_faults_of(cell),
    )
    assert_vertex_cover(square(graph), result.cover)
    payload: dict[str, Any] = {
        "cover_size": len(result.cover),
        "stats": stats_to_json(result.stats),
        "signature": signature_of(result.cover),
        "mpc": mpc,
    }
    # The fault/recovery report rides top-level (matching mpc-matching),
    # keeping "mpc" the parity-compared ledger.
    if "faults" in mpc:
        payload["faults"] = mpc.pop("faults")
    if collector is not None:
        payload["metrics"] = collector.to_json()
    return payload


@register_task("mpc-mds", graph_cache=True)
def _mpc_mds(cell: Cell) -> dict[str, Any]:
    """Theorem 28 MDS compiled onto the MPC backend (see ``mpc-mvc``)."""
    from repro.graphs.power import square
    from repro.graphs.validation import assert_dominating_set
    from repro.mpc.compile_congest import solve_mds_mpc

    alpha = float(cell.param("alpha", 0.8))
    graph = _cell_graph(cell)
    collector = _cell_collector(cell)
    result, mpc = solve_mds_mpc(
        graph,
        alpha=alpha,
        seed=cell.seed,
        check_parity=bool(cell.param("parity", False)),
        compress=_compress_of(cell),
        collector=collector,
        workers=_workers_of(cell),
        faults=_faults_of(cell),
    )
    assert_dominating_set(square(graph), result.cover)
    payload: dict[str, Any] = {
        "cover_size": len(result.cover),
        "phases": result.detail["phases"],
        "stats": stats_to_json(result.stats),
        "signature": signature_of(result.cover),
        "mpc": mpc,
    }
    if "faults" in mpc:
        payload["faults"] = mpc.pop("faults")
    if collector is not None:
        payload["metrics"] = collector.to_json()
    return payload


@register_task("mpc-matching", graph_cache=True)
def _mpc_matching(cell: Cell) -> dict[str, Any]:
    """Native MPC greedy maximal matching, oracle-verified.

    The cell fails (captured by the runner) unless the output is a valid
    maximal matching within the 2-approximation band of the centralized
    greedy oracle.
    """
    from repro.exact.matching import deterministic_maximal_matching
    from repro.mpc.matching import (
        assert_maximal_matching,
        mpc_maximal_matching,
    )

    alpha = float(cell.param("alpha", 0.8))
    graph = _cell_graph(cell)
    collector = _cell_collector(cell)
    result = mpc_maximal_matching(
        graph, alpha=alpha, seed=cell.seed, workers=_workers_of(cell),
        faults=_faults_of(cell), collector=collector,
    )
    assert_maximal_matching(graph, result.matching)
    oracle = deterministic_maximal_matching(graph)
    if oracle and not (
        len(oracle) / 2 <= len(result.matching) <= 2 * len(oracle)
    ):
        raise AssertionError(
            f"matching size {len(result.matching)} outside the maximal band "
            f"[{len(oracle) / 2:g}, {2 * len(oracle)}] of the oracle"
        )
    payload: dict[str, Any] = {
        "matching_size": len(result.matching),
        "oracle_size": len(oracle),
        "phases": result.phases,
        "signature": signature_of(
            tuple(sorted(tuple(sorted(map(repr, e))) for e in result.matching))
        ),
        "mpc": result.summary(),
    }
    if result.faults is not None:
        payload["faults"] = result.faults
    if collector is not None:
        payload["metrics"] = collector.to_json()
    return payload


@register_task("mpc-parity", graph_cache=True)
def _mpc_parity(cell: Cell) -> dict[str, Any]:
    """Round-compilation trust-but-check: stage parity plus matching.

    Runs the Phase I MVC protocol and the Lemma 29 estimator as bare
    stages on the MPC runtime against an engine-v2 shadow (outputs, stats
    and full traces must be identical), then the native matching with its
    maximality oracle.  The CLI ``verify --model mpc`` fans these cells
    out over seeds.
    """
    from repro.core.estimation import EstimationStage
    from repro.core.mvc_congest import PhaseOneAlgorithm
    from repro.exact.matching import deterministic_maximal_matching
    from repro.mpc.compile_congest import run_stage_parity
    from repro.mpc.matching import (
        assert_maximal_matching,
        mpc_maximal_matching,
    )

    alpha = float(cell.param("alpha", 0.9))
    graph = _cell_graph(cell)

    def prepare(network: CongestNetwork) -> None:
        for node_id in network.ids():
            network.node_state[node_id]["in_U"] = True

    report = run_stage_parity(
        graph,
        [
            lambda view: PhaseOneAlgorithm(view, threshold=2, iterations=4),
            lambda view: EstimationStage(view, samples=6),
        ],
        alpha=alpha,
        seed=cell.seed,
        prepare=prepare,
        compress=_compress_of(cell),
        workers=_workers_of(cell),
        faults=_faults_of(cell),
    )
    matching = mpc_maximal_matching(
        graph, alpha=alpha, seed=cell.seed, workers=_workers_of(cell),
        faults=_faults_of(cell),
    )
    assert_maximal_matching(graph, matching.matching)
    oracle = deterministic_maximal_matching(graph)
    return {
        "ok": True,
        "stages": report["stages"],
        "congest_rounds": report["congest_rounds"],
        "matching_size": len(matching.matching),
        "oracle_size": len(oracle),
        "mpc": report["mpc"],
    }


# -- engine-scaling primitives (sparse-activity workloads) ----------------


@register_task("pipeline-path")
def _pipeline_path(cell: Cell) -> dict[str, Any]:
    """BFS + convergecast of a token batch along a path.

    The canonical sparse-activity workload: outside the token front almost
    every node is idle almost every round, which is where the activity
    engine's wake scheduling pays off.
    """
    from repro.congest.primitives import convergecast_tokens
    from repro.graphs.generators import path_graph

    tokens_per_node = int(cell.param("tokens", 16))
    net = CongestNetwork(
        path_graph(cell.n), seed=cell.seed, engine=cell.engine
    )
    tokens = {0: [(i, i) for i in range(tokens_per_node)]}
    collected, combined = convergecast_tokens(net, tokens)
    return {
        "collected": len(collected),
        "stats": stats_to_json(combined.stats),
        "signature": signature_of(collected),
    }


@register_task("broadcast-star")
def _broadcast_star(cell: Cell) -> dict[str, Any]:
    """BFS + token broadcast on a high-degree star."""
    from repro.congest.primitives import broadcast_tokens
    from repro.graphs.generators import star_graph

    tokens_per_node = int(cell.param("tokens", 16))
    net = CongestNetwork(
        star_graph(cell.n), seed=cell.seed, engine=cell.engine
    )
    result, _bfs = broadcast_tokens(
        net, [(i,) for i in range(tokens_per_node)]
    )
    return {
        "received": len(result.outputs[0]),
        "stats": stats_to_json(result.stats),
        "signature": signature_of(result.outputs[0]),
    }


# -- lower-bound family verification (the CLI `verify` cells) -------------


def _verify_family(cell: Cell, family: str) -> dict[str, Any]:
    from repro.exact.dominating_set import (
        minimum_dominating_set,
        minimum_weighted_dominating_set,
    )
    from repro.exact.vertex_cover import minimum_vertex_cover
    from repro.graphs.power import square
    from repro.lowerbounds.bcd19 import bcd19_threshold, build_bcd19_mds
    from repro.lowerbounds.ckp17 import build_ckp17_mvc, ckp17_threshold
    from repro.lowerbounds.disjointness import disj, random_instance
    from repro.lowerbounds.mds_square_gap import (
        GapConstructionParams,
        build_gap_family,
    )

    k = int(cell.param("k", 2))
    x, y = random_instance(k, seed=cell.seed)
    if family == "ckp17":
        fam = build_ckp17_mvc(x, y, k)
        value = len(minimum_vertex_cover(fam.graph))
        tight = value == ckp17_threshold(k)
    elif family == "bcd19":
        fam = build_bcd19_mds(x, y, k)
        value = len(minimum_dominating_set(fam.graph))
        tight = value <= bcd19_threshold(k)
    else:
        params = GapConstructionParams()
        small_x = frozenset(p for p in x if p[0] <= 3 and p[1] <= 3)
        small_y = frozenset(p for p in y if p[0] <= 3 and p[1] <= 3)
        weighted = family == "gap-weighted"
        fam = build_gap_family(small_x, small_y, params, weighted=weighted)
        sq = square(fam.graph)
        if weighted:
            weights = fam.extra["weights"]
            ds = minimum_weighted_dominating_set(sq, weights)
            value = sum(weights[v] for v in ds)
        else:
            value = len(minimum_dominating_set(sq))
        tight = value <= fam.threshold
    expected = not disj(fam.x, fam.y)
    return {
        "value": value,
        "threshold": fam.threshold,
        "intersecting": expected,
        "ok": tight == expected,
    }


for _family in ("ckp17", "bcd19", "gap-weighted", "gap-unweighted"):
    def _make(family: str) -> TaskFn:
        def _task(cell: Cell) -> dict[str, Any]:
            return _verify_family(cell, family)

        _task.__doc__ = f"Exact verification of one {family} instance."
        return _task

    _REGISTRY[f"verify-{_family}"] = _make(_family)


# -- self-test tasks (failure / timeout plumbing) -------------------------


@register_task("selftest-ok")
def _selftest_ok(cell: Cell) -> dict[str, Any]:
    """Trivial succeeding task; exercises runner plumbing in tests."""
    return {"n": cell.n, "seed": cell.seed, "signature": f"ok-{cell.n}"}


@register_task("selftest-fail")
def _selftest_fail(cell: Cell) -> dict[str, Any]:
    """Always raises; exercises worker-failure capture."""
    raise RuntimeError(f"selftest-fail cell n={cell.n} seed={cell.seed}")


@register_task("selftest-sleep")
def _selftest_sleep(cell: Cell) -> dict[str, Any]:
    """Sleeps ``params['sleep']`` seconds; exercises timeout capture."""
    time.sleep(float(cell.param("sleep", 1.0)))  # repro: allow[DET002] selftest task exists to exercise timeout capture
    return {"slept": float(cell.param("sleep", 1.0))}


@register_task("selftest-kill")
def _selftest_kill(cell: Cell) -> dict[str, Any]:
    """SIGKILLs its own process — simulates an OOM-killed pool worker.

    The runner must record a per-cell error (``BrokenProcessPool``) rather
    than hang waiting for a result that will never arrive.  Never run this
    serially: in-process it kills the caller, which is the simulated
    disaster, not a test harness.

    With a ``marker`` param (a file path), the kill happens only while
    the marker does not exist — the first attempt creates it and dies,
    any retry succeeds.  That is the pool-level transient the runner's
    fresh-worker retry path exists for.
    """
    marker = cell.param("marker")
    if marker is not None:
        from pathlib import Path

        path = Path(str(marker))
        if path.exists():
            return {"n": cell.n, "signature": f"kill-recovered-{cell.n}"}
        path.write_text("killed once\n")
    os.kill(os.getpid(), signal.SIGKILL)
    raise AssertionError("unreachable")  # pragma: no cover


@register_task("selftest-flaky")
def _selftest_flaky(cell: Cell) -> dict[str, Any]:
    """Fails transiently on the first attempt, succeeds afterwards.

    Uses a ``marker`` param (a file path) as cross-attempt state: while
    the marker does not exist the task creates it and raises
    :class:`~repro.mpc.parallel.WorkerCrashError` — the canonical
    transient the retry loop is allowed to retry.  Without a marker the
    task always succeeds.
    """
    marker = cell.param("marker")
    if marker is not None:
        from pathlib import Path

        from repro.mpc.parallel import WorkerCrashError

        path = Path(str(marker))
        if not path.exists():
            path.write_text("failed once\n")
            raise WorkerCrashError(
                f"selftest-flaky first attempt n={cell.n} seed={cell.seed}"
            )
    return {"n": cell.n, "seed": cell.seed, "signature": f"flaky-{cell.n}"}
