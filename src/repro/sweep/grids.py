"""Named benchmark grids, shared by pytest benchmarks and the CLI.

Each builder returns the exact cell list a benchmark module asserts over,
so ``PYTHONPATH=src python -m pytest benchmarks/bench_e01_mvc_congest.py``
(serial, in-process) and ``python -m repro sweep --grid e01 --jobs 4``
(process pool) evaluate *the same cells* and merge byte-identical
deterministic results.  Keep the numbers here in sync with the benchmark
assertions — the grids are the single source of truth for the cells.
"""

from __future__ import annotations

from repro.sweep.spec import Cell, GridSpec

#: Scenario table of the engine-scaling sweep: task, (full sizes), (quick
#: sizes).  Mirrors the original ``bench_engine_scaling`` scenarios.
ENGINE_SCALING_SCENARIOS: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...] = (
    ("pipeline-path", (120, 240, 480), (240,)),
    ("broadcast-star", (100, 200, 400), (200,)),
    ("mvc-er", (60, 120, 240), (120,)),
    ("mvc-power-law", (60, 120), (60,)),
    ("mds-er", (32, 48), ()),
)

_SCENARIO_CELLS = {
    "pipeline-path": lambda n, engine: Cell(
        task="pipeline-path", graph="path", n=n, seed=1, engine=engine
    ),
    "broadcast-star": lambda n, engine: Cell(
        task="broadcast-star", graph="star", n=n, seed=1, engine=engine
    ),
    "mvc-er": lambda n, engine: Cell(
        task="mvc-congest", graph="gnp", n=n, seed=n, eps=0.5, engine=engine
    ),
    "mvc-power-law": lambda n, engine: Cell(
        task="mvc-congest",
        graph="power-law",
        n=n,
        seed=n,
        eps=0.5,
        engine=engine,
    ),
    "mds-er": lambda n, engine: Cell(
        task="mds-congest", graph="gnp", n=n, seed=n, engine=engine
    ),
}


def e01_grid() -> GridSpec:
    """E01 / Theorem 1: rounds and ratio vs (n, eps) for G^2-MVC."""
    cells = [
        Cell(
            task="mvc-congest",
            graph="gnp",
            n=n,
            seed=n,
            eps=eps,
            params=(("exact", True),),
        )
        for eps in (0.5, 0.25)
        for n in (24, 48, 96)
    ]
    return GridSpec(name="e01", cells=tuple(cells))


def e12_estimator_grid() -> GridSpec:
    """E12a / Lemma 29: estimator concentration vs sample count."""
    cells = [
        Cell(
            task="mds-estimator",
            graph="gnp",
            n=24,
            seed=3,
            params=(("graph_seed", 2), ("gnp_p", 0.2), ("samples", s)),
        )
        for s in (8, 32, 128, 512)
    ]
    return GridSpec(name="e12-estimator", cells=tuple(cells))


def e12_mds_grid() -> GridSpec:
    """E12b / Theorem 28: MDS quality and phase counts vs n."""
    cells = [
        Cell(
            task="mds-congest",
            graph="gnp",
            n=n,
            seed=n,
            params=(("exact", True), ("gnp_p", 4.0 / n)),
        )
        for n in (16, 32)
    ]
    return GridSpec(name="e12-mds", cells=tuple(cells))


def engine_scaling_grid(quick: bool = False) -> GridSpec:
    """Engine v1-vs-v2 differential sweep across scenario x size.

    Adjacent (v1, v2) cell pairs per (scenario, n); the benchmark checks
    payload parity within each pair and computes wall-clock speedups.
    """
    cells = []
    for name, sizes, quick_sizes in ENGINE_SCALING_SCENARIOS:
        for n in quick_sizes if quick else sizes:
            for engine in ("v1", "v2"):
                cells.append(_SCENARIO_CELLS[name](n, engine))
    return GridSpec(
        name="engine-scaling-quick" if quick else "engine-scaling",
        cells=tuple(cells),
    )


#: Engines compared by the solver-engines grid, in evaluation order.
SOLVER_ENGINES = ("v1", "v2-dict", "v2")


def solver_engines_grid(quick: bool = False) -> GridSpec:
    """Batched-outbox engine sweep over the real solver benchmarks.

    Adjacent (v1, v2-dict, v2) cell triples per (task, n) point:

    * *parity points* (small n) — the benchmark asserts byte-identical
      payloads across all three engine configurations, and re-runs the
      solver stages with tracing on to compare full round timelines;
    * *timing points* (n >= 200, denser than the sweep default so the
      broadcast batches are wide) — the benchmark reports the v2-batched
      speedup over v2-dict (the engine exactly as of the pre-batching
      revision) and over v1, and ``--check`` requires >= 1.5x batched
      vs dict on the E01 (MVC) and E12 (MDS) cells.

    ``quick`` keeps the parity points and shrinks the timing points to CI
    scale (seconds, not minutes).
    """
    points: list[tuple[str, int, float | None, float | None]] = [
        # (task, n, eps, gnp_p); gnp_p None = generator default.
        ("mvc-congest", 64, 0.5, None),
        ("mds-congest", 32, None, 0.125),
    ]
    if quick:
        points += [
            ("mvc-congest", 96, 0.5, 0.1),
            ("mds-congest", 48, None, 0.125),
        ]
    else:
        points += [
            ("mvc-congest", 240, 0.5, 0.1),
            ("mds-congest", 208, None, 0.115),
        ]
    cells = []
    for task, n, eps, p in points:
        params = (("gnp_p", p),) if p is not None else ()
        for engine in SOLVER_ENGINES:
            cells.append(
                Cell(
                    task=task,
                    graph="gnp",
                    n=n,
                    seed=n,
                    eps=eps,
                    engine=engine,
                    params=params,
                )
            )
    return GridSpec(
        name="solver-engines-quick" if quick else "solver-engines",
        cells=tuple(cells),
    )


def mpc_vs_congest_grid(quick: bool = False) -> GridSpec:
    """Round-compilation parity sweep: CONGEST engine v2 vs the MPC backend.

    For every (task, n) point one ``engine="v2"`` CONGEST cell is followed
    by one MPC cell per alpha, all sharing the graph and seed.  The MPC
    cells carry ``parity=True`` — each runs its own engine-v2 shadow and
    asserts word-for-word metering parity in-process — and
    ``bench_mpc.py`` additionally checks the *payloads* match across the
    pairing (cover signature and every ``RunStats`` field), while reading
    rounds and max machine load vs (alpha, n) out of the ``mpc`` ledger.
    Per-point alpha lists start at the smallest budget the point's
    workload fits (the max-degree vertex must fit in ``S = ceil(n^alpha)``
    and the densest round's shuffle in ``O(S)``); anything below fails
    with ``MemoryBudgetExceeded``, which ``bench_mpc.py`` demonstrates on
    a dedicated probe cell rather than inside this grid.
    """
    points: list[
        tuple[str, str, int, float | None, float, tuple[float, ...]]
    ] = [
        # (congest task, mpc task, n, eps, gnp_p, alphas)
        ("mvc-congest", "mpc-mvc", 16, 0.5, 0.2, (0.8, 0.9, 1.0)),
        ("mds-congest", "mpc-mds", 12, None, 0.25, (0.8, 0.9, 1.0)),
    ]
    if not quick:
        points += [
            ("mvc-congest", "mpc-mvc", 24, 0.5, 0.15, (0.7, 0.85, 1.0)),
            ("mvc-congest", "mpc-mvc", 40, 0.5, 0.1, (0.7, 0.85, 1.0)),
            ("mds-congest", "mpc-mds", 16, None, 0.2, (0.8, 0.9, 1.0)),
        ]
    cells = []
    for congest_task, mpc_task, n, eps, p, alphas in points:
        base = (("gnp_p", p),)
        cells.append(
            Cell(
                task=congest_task,
                graph="gnp",
                n=n,
                seed=n,
                eps=eps,
                engine="v2",
                params=base,
            )
        )
        for alpha in alphas:
            cells.append(
                Cell(
                    task=mpc_task,
                    graph="gnp",
                    n=n,
                    seed=n,
                    eps=eps,
                    params=base + (("alpha", alpha), ("parity", True)),
                )
            )
    return GridSpec(
        name="mpc-vs-congest-quick" if quick else "mpc-vs-congest",
        cells=tuple(cells),
    )


#: Compression windows swept by the ``mpc-compression`` grids.  The
#: benchmark's ``--check`` gate asserts shuffle counts strictly decrease
#: along this axis on every (task, n, alpha) point of the quick grid.
MPC_COMPRESSION_KS = (1, 2, 4)


def mpc_compression_grid(quick: bool = False) -> GridSpec:
    """Round-compression sweep: shuffles vs ``k`` at fixed (task, n, alpha).

    Every cell carries ``parity=True`` (its own engine-v2 shadow asserts
    the CONGEST ledger is untouched by compression) and ``metrics=True``
    (the payload embeds the cell's metrics document, whose deterministic
    section must be byte-identical across the whole compression axis), and
    cells differ only in the ``compress`` window along
    :data:`MPC_COMPRESSION_KS` plus one trailing ``compress="auto"`` cell
    per point, so ``bench_mpc.py`` can read shuffle-count-vs-k curves
    straight off the ``mpc`` ledger and check the adaptive controller
    never loses to the best fixed window.  Alphas sit in the regime where
    the k-hop frontier actually fits the window budget — the point of the
    grid is to observe compression *engaging*; the forced-fallback regime
    is covered by the differential tests instead.
    """
    points: list[tuple[str, int, float | None, float, float]] = [
        # (task, n, eps, gnp_p, alpha).  MDS points need the near-linear
        # alpha = 1.0: its many short stages restart windows constantly,
        # and only that budget lets the deeper (k-1)-hop frontiers fit
        # often enough for k = 4 to beat k = 2 strictly.
        ("mpc-mvc", 16, 0.5, 0.2, 0.9),
        ("mpc-mds", 12, None, 0.25, 1.0),
    ]
    if not quick:
        points += [
            ("mpc-mvc", 24, 0.5, 0.15, 0.85),
            ("mpc-mvc", 24, 0.5, 0.15, 1.0),
            ("mpc-mds", 16, None, 0.2, 1.1),
        ]
    cells = []
    for task, n, eps, p, alpha in points:
        for k in (*MPC_COMPRESSION_KS, "auto"):
            params: tuple[tuple[str, object], ...] = (
                ("gnp_p", p),
                ("alpha", alpha),
                ("parity", True),
                ("metrics", True),
            )
            if k != 1:
                params += (("compress", k),)
            cells.append(
                Cell(
                    task=task,
                    graph="gnp",
                    n=n,
                    seed=n,
                    eps=eps,
                    params=params,
                )
            )
    return GridSpec(
        name="mpc-compression-quick" if quick else "mpc-compression",
        cells=tuple(cells),
    )


def mpc_smoke_grid() -> GridSpec:
    """Small all-MPC grid for CI smoke runs (seconds, not minutes)."""
    cells = [
        Cell(
            task="mpc-mvc",
            graph="gnp",
            n=14,
            seed=2,
            eps=0.5,
            params=(("alpha", 0.9),),
        ),
        Cell(
            task="mpc-mvc",
            graph="tree",
            n=12,
            seed=3,
            eps=0.5,
            params=(("alpha", 0.85),),
        ),
        Cell(
            task="mpc-mds",
            graph="gnp",
            n=12,
            seed=5,
            params=(("alpha", 0.9),),
        ),
        Cell(
            task="mpc-matching",
            graph="gnp",
            n=24,
            seed=7,
            params=(("alpha", 0.8),),
        ),
        Cell(
            task="mpc-matching",
            graph="path",
            n=32,
            seed=1,
            params=(("alpha", 0.6),),
        ),
        Cell(
            task="mpc-parity",
            graph="gnp",
            n=16,
            seed=4,
            params=(("alpha", 0.9), ("gnp_p", 0.2)),
        ),
    ]
    return GridSpec(name="mpc-smoke", cells=tuple(cells))


def mpc_chaos_grid() -> GridSpec:
    """Chaos smoke grid: MPC cells with injected crashes, parity-checked.

    Every cell runs with 2 shard workers, a seeded fault plan that kills
    at least one worker mid-run, and ``parity=True`` — so the
    crash-recovered MPC execution is compared word-for-word against a
    clean engine-v2 shadow *inside* the cell.  On platforms without
    ``fork`` the cells run serially and the crash events stay pending;
    the parity check still runs.
    """
    cells = [
        Cell(
            task="mpc-mvc",
            graph="gnp",
            n=14,
            seed=2,
            eps=0.5,
            params=(
                ("alpha", 0.9),
                ("parity", True),
                ("mpc_workers", 2),
                ("faults", "crash@1"),
            ),
        ),
        Cell(
            task="mpc-mvc",
            graph="tree",
            n=12,
            seed=3,
            eps=0.5,
            params=(
                ("alpha", 0.85),
                ("parity", True),
                ("mpc_workers", 2),
                ("faults", "straggle@1:0.01,crash@3"),
            ),
        ),
        Cell(
            task="mpc-mds",
            graph="gnp",
            n=12,
            seed=5,
            params=(
                ("alpha", 0.9),
                ("parity", True),
                ("mpc_workers", 2),
                ("faults", "crash@2,crash@4,max_recoveries=1"),
            ),
        ),
        Cell(
            task="mpc-matching",
            graph="gnp",
            n=24,
            seed=7,
            params=(
                ("alpha", 0.8),
                ("mpc_workers", 2),
                ("faults", "crash@2"),
            ),
        ),
    ]
    return GridSpec(name="mpc-chaos", cells=tuple(cells))


def smoke_grid() -> GridSpec:
    """Small mixed grid for CI smoke runs (seconds, not minutes)."""
    cells = [
        Cell(task="mvc-congest", graph="gnp", n=14, seed=2, eps=0.5),
        Cell(task="mvc-congest", graph="tree", n=12, seed=3, eps=0.5),
        Cell(task="mvc-congest", graph="grid", n=9, seed=0, eps=0.25),
        Cell(task="mds-congest", graph="gnp", n=12, seed=5),
        Cell(task="pipeline-path", graph="path", n=40, seed=1),
        Cell(task="broadcast-star", graph="star", n=30, seed=1),
        Cell(task="verify-ckp17", n=0, seed=0, params=(("k", 2),)),
        Cell(task="verify-bcd19", n=0, seed=1, params=(("k", 2),)),
    ]
    return GridSpec(name="smoke", cells=tuple(cells))


def parallel_bench_grid() -> GridSpec:
    """The >= 24-cell grid behind ``benchmarks/bench_sweep_parallel.py``.

    Homogeneous, CPU-bound cells sized so the serial run takes tens of
    seconds — the regime where a process pool's speedup is measurable.
    """
    cells = [
        Cell(
            task="mvc-congest",
            graph="gnp",
            n=160,
            seed=seed,
            eps=0.5,
            engine=engine,
        )
        for seed in range(12)
        for engine in ("v1", "v2")
    ]
    return GridSpec(name="parallel-bench", cells=tuple(cells))


def scenario_of(cell: Cell) -> str:
    """Scenario name of an engine-scaling cell (inverse of the cell table)."""
    by_coords = {
        ("pipeline-path", "path"): "pipeline-path",
        ("broadcast-star", "star"): "broadcast-star",
        ("mvc-congest", "gnp"): "mvc-er",
        ("mvc-congest", "power-law"): "mvc-power-law",
        ("mds-congest", "gnp"): "mds-er",
    }
    return by_coords[(cell.task, cell.graph)]


NAMED_GRIDS = {
    "e01": e01_grid,
    "e12-estimator": e12_estimator_grid,
    "e12-mds": e12_mds_grid,
    "engine-scaling": engine_scaling_grid,
    "engine-scaling-quick": lambda: engine_scaling_grid(quick=True),
    "solver-engines": solver_engines_grid,
    "solver-engines-quick": lambda: solver_engines_grid(quick=True),
    "smoke": smoke_grid,
    "parallel-bench": parallel_bench_grid,
    "mpc-smoke": mpc_smoke_grid,
    "mpc-chaos": mpc_chaos_grid,
    "mpc-vs-congest": mpc_vs_congest_grid,
    "mpc-vs-congest-quick": lambda: mpc_vs_congest_grid(quick=True),
    "mpc-compression": mpc_compression_grid,
    "mpc-compression-quick": lambda: mpc_compression_grid(quick=True),
}


def named_grid(name: str) -> GridSpec:
    try:
        builder = NAMED_GRIDS[name]
    except KeyError:
        raise KeyError(
            f"unknown grid {name!r}; choose from {sorted(NAMED_GRIDS)}"
        ) from None
    return builder()
