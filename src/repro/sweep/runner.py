"""Sweep execution: serial or process-pool, with identical merged results.

:func:`run_sweep` evaluates every cell of a :class:`~repro.sweep.spec.GridSpec`
through the task registry and merges the outcomes into a
:class:`SweepResult`.  ``jobs=1`` evaluates in-process (the pytest and
benchmark path); ``jobs>1`` fans cells out over a ``multiprocessing`` pool
(the CLI path).  Because cells are self-contained and deterministically
seeded, the two paths produce byte-identical deterministic payloads — only
wall-clock fields differ, and those are kept out of
:meth:`SweepResult.deterministic_json` precisely so the equality is
checkable (``tests/test_sweep.py`` does).

Failure handling: a task that raises is captured as a ``status="error"``
cell result carrying the formatted traceback; a task that exceeds the
per-cell ``timeout`` is captured as ``status="timeout"`` (implemented with
``SIGALRM``, so it works identically inside pool workers and in serial runs
on the main thread).  Neither aborts the sweep — the merged table reports
every cell.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import signal
import sys
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.congest.network import RunStats
from repro.sweep.spec import Cell, GridSpec
from repro.sweep.tasks import (
    export_graph_cache,
    get_task,
    install_graph_cache,
    prewarm_graph_cache,
    stats_from_json,
)

try:  # POSIX-only; RSS metering degrades to None elsewhere.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

#: Cap on the traceback text shipped back from a failed worker.
_ERROR_LIMIT = 4000

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


class CellTimeoutError(TimeoutError):
    """Raised inside a worker when a cell exceeds its time budget.

    Subclasses :class:`TimeoutError` so budget expiry stays recognizable
    through code that swallows ordinary failures (the graph-cache prewarm
    skips unbuildable cells but must re-raise timeouts).
    """


@dataclass
class CellResult:
    """Outcome of evaluating one cell.

    ``max_rss_kb`` is the evaluating process's peak resident set size
    (``resource.getrusage``) observed right after the cell ran, in KiB;
    ``None`` where the ``resource`` module is unavailable.  It is a
    process-lifetime high-water mark, so in serial runs it is monotone
    across cells (the first big cell dominates later small ones); with a
    process pool each worker's peak reflects only the cells it evaluated.
    Like ``seconds`` it is machine-dependent and excluded from
    :meth:`SweepResult.deterministic_json`.
    """

    cell: Cell
    status: str
    payload: dict[str, Any] | None = None
    error: str | None = None
    seconds: float = 0.0
    max_rss_kb: int | None = None
    #: Environment degradations that did not fail the cell — currently the
    #: timeout fallback (a requested ``timeout`` that could not be armed
    #: because ``SIGALRM`` is unavailable or the evaluation runs off the
    #: main thread runs un-budgeted instead of silently pretending the
    #: budget was enforced).  Platform-dependent like ``seconds``, so it is
    #: excluded from :meth:`SweepResult.deterministic_json`.
    warning: str | None = None
    #: How many evaluations this result took (1 = no retry).  Retries only
    #: happen for transient failures (worker crash, timeout, broken pool)
    #: and re-run the same deterministic cell, so the *payload* is
    #: retry-invariant; the count itself is scheduling luck and therefore
    #: timing-scoped, like ``seconds``.
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def stats(self) -> RunStats | None:
        """The cell's simulator stats, if the task reported any."""
        if self.payload and "stats" in self.payload:
            return stats_from_json(self.payload["stats"])
        return None

    def to_json(self, include_timing: bool = True) -> dict[str, Any]:
        payload = self.payload
        if not include_timing and payload is not None and "faults" in payload:
            # The fault/recovery report is execution detail, not
            # computation: the same crash event *fires* under shard
            # workers but stays *pending* on a serial run, so keeping it
            # in deterministic_json would break the worker-count
            # invariance of the digest.  Scope it with the timings.
            payload = {k: v for k, v in payload.items() if k != "faults"}
        data: dict[str, Any] = {
            "cell": self.cell.to_json(),
            "key": self.cell.key,
            "status": self.status,
            "payload": payload,
            "error": self.error,
        }
        if include_timing:
            data["seconds"] = self.seconds
            # Alias with the documented name: per-cell wall time.  Scoped
            # with the timings (machine-dependent), like ``max_rss_kb``.
            data["elapsed_s"] = self.seconds
            data["max_rss_kb"] = self.max_rss_kb
            data["warning"] = self.warning
            data["attempts"] = self.attempts
        return data


@dataclass
class SweepResult:
    """Merged outcome of one grid evaluation."""

    grid: GridSpec
    results: list[CellResult]
    jobs: int
    wall_seconds: float

    def __post_init__(self) -> None:
        self.results = sorted(self.results, key=lambda r: r.cell.index)

    # -- queries -----------------------------------------------------------

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> list[CellResult]:
        return [r for r in self.results if not r.ok]

    def ok_payloads(self) -> list[tuple[Cell, dict[str, Any]]]:
        """(cell, payload) for successful cells; raises if any cell failed.

        Benchmarks use this as their "everything ran" guard before reading
        numbers out of the merged table.
        """
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)} cell(s) failed; first: "
                f"{first.cell.key} [{first.status}] {first.error}"
            )
        return [(r.cell, r.payload or {}) for r in self.results]

    def aggregate_stats(self) -> dict[int, RunStats]:
        """Summed simulator stats per word size.

        ``RunStats.__add__`` refuses to mix word sizes (word counts are not
        commensurable across them), so aggregation buckets by ``word_bits``
        and sums within each bucket.
        """
        buckets: dict[int, RunStats] = {}
        for result in self.results:
            stats = result.stats()
            if stats is None:
                continue
            if stats.word_bits in buckets:
                buckets[stats.word_bits] = buckets[stats.word_bits] + stats
            else:
                buckets[stats.word_bits] = stats
        return buckets

    # -- serialization -----------------------------------------------------

    def to_json(self, include_timing: bool = True) -> dict[str, Any]:
        counts = {
            status: sum(1 for r in self.results if r.status == status)
            for status in (STATUS_OK, STATUS_ERROR, STATUS_TIMEOUT)
        }
        data: dict[str, Any] = {
            "grid": self.grid.name,
            "cells": len(self.results),
            "counts": counts,
            # "warnings" is added under include_timing below: whether a
            # cell degraded (e.g. an unenforceable timeout) depends on
            # the platform, so it must stay out of deterministic_json.
            "results": [
                r.to_json(include_timing=include_timing)
                for r in self.results
            ],
            "aggregate_stats": {
                str(bits): {
                    "rounds": stats.rounds,
                    "messages": stats.messages,
                    "total_words": stats.total_words,
                    "total_bits": stats.total_bits,
                    "max_words_per_edge_round": (
                        stats.max_words_per_edge_round
                    ),
                    "cut_words": stats.cut_words,
                }
                for bits, stats in sorted(self.aggregate_stats().items())
            },
        }
        if include_timing:
            data["jobs"] = self.jobs
            data["wall_seconds"] = self.wall_seconds
            data["warnings"] = sum(1 for r in self.results if r.warning)
        return data

    def deterministic_json(self) -> str:
        """Canonical JSON of everything except timing and worker count.

        Two evaluations of the same grid — any ``jobs``, any machine — must
        return equal strings; this is the sweep runner's parity contract.
        Scope: the contract assumes no cell was classified ``timeout`` in
        either run — cell *outcomes* are deterministic, but whether a cell
        beats a wall-clock budget depends on machine speed and pool
        contention, so ``timeout`` cells (included here, like every
        failure) can legitimately differ between runs under ``--timeout``.
        """
        return json.dumps(
            self.to_json(include_timing=False), sort_keys=True
        )

    def deterministic_sha256(self) -> str:
        """Digest of :meth:`deterministic_json` — the parity fingerprint.

        The single definition used by the CLI, the benchmarks and the
        tests, so "same grid => same digest" stays comparable everywhere.
        """
        return hashlib.sha256(
            self.deterministic_json().encode("utf-8")
        ).hexdigest()

    def table_rows(self) -> list[tuple[object, ...]]:
        """Rows for ``benchmarks._common.print_table`` / the CLI table."""
        rows: list[tuple[object, ...]] = []
        for result in self.results:
            stats = result.stats()
            detail = ""
            if result.status != STATUS_OK:
                lines = (result.error or "").strip().splitlines()
                detail = lines[-1][:40] if lines else result.status
            elif result.payload:
                sig = result.payload.get("signature")
                detail = str(sig) if sig else ""
            if result.warning:
                # A degraded cell must be visible in the merged table, not
                # only in the JSON dump.
                detail = f"warn! {detail}".rstrip()
            rows.append(
                (
                    result.cell.key,
                    result.status,
                    stats.rounds if stats else "-",
                    stats.messages if stats else "-",
                    result.seconds * 1e3,
                    detail,
                )
            )
        return rows

    def timing_histogram(self, bins: int = 16) -> str:
        """One-line per-cell wall-time histogram for the table footer.

        Buckets the cells' ``seconds`` linearly between the fastest and
        slowest cell; purely informational (wall time never enters the
        deterministic digest).
        """
        times = [r.seconds for r in self.results]
        if not times:
            return "cell wall-time: no cells"
        lo, hi = min(times), max(times)
        counts = [0] * bins
        if hi <= lo:
            counts[0] = len(times)
        else:
            for t in times:
                index = min(bins - 1, int((t - lo) / (hi - lo) * bins))
                counts[index] += 1
        blocks = "▁▂▃▄▅▆▇█"
        peak = max(counts)
        bar = "".join(
            "." if count == 0
            else blocks[max(0, (len(blocks) * count - 1) // peak)]
            for count in counts
        )
        return (
            f"cell wall-time: min {lo * 1e3:.1f} ms · "
            f"max {hi * 1e3:.1f} ms · total {sum(times):.2f} s · "
            f"histogram [{bar}]"
        )


TABLE_HEADER = ("cell", "status", "rounds", "messages", "ms", "detail")


# -- cell evaluation -------------------------------------------------------


def _alarm_handler(signum, frame):  # pragma: no cover - dispatched by OS
    raise CellTimeoutError


def _can_arm_alarm() -> bool:
    """Whether a ``SIGALRM`` timeout can actually be armed here.

    Two independent degradations exist: platforms without ``SIGALRM``
    (e.g. Windows) where referencing it would raise, and non-main threads,
    where ``signal.signal`` raises ``ValueError`` and an armed alarm would
    never be delivered to this frame anyway.  Callers that detect either
    must fall back to no-timeout *visibly* (a ``CellResult.warning``), not
    silently.
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _peak_rss_kb() -> int | None:
    """Peak RSS of this process in KiB, or None without ``resource``.

    Linux reports ``ru_maxrss`` in KiB; macOS reports bytes and is
    normalized by platform rather than by guessing from magnitude.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def evaluate_cell(
    cell: Cell, timeout: float | None = None, repeats: int = 1
) -> CellResult:
    """Evaluate one cell, capturing failures and (optionally) timeouts.

    ``repeats`` re-runs the task and keeps the best wall-clock (the payload
    comes from the last run; tasks are deterministic, so payloads of all
    repeats are equal) — the standard best-of-N used by the benchmarks.

    The timeout uses ``SIGALRM`` and therefore only applies on the main
    thread of a POSIX process; elsewhere it degrades to "no timeout" —
    recorded as ``CellResult.warning`` so the degradation is visible in
    the merged table — rather than failing (the budget covers all repeats
    together).
    """
    timeout_requested = timeout is not None and timeout > 0
    use_alarm = timeout_requested and _can_arm_alarm()
    warning = None
    if timeout_requested and not use_alarm:
        if not hasattr(signal, "SIGALRM"):
            warning = (
                f"timeout {timeout:g}s not enforced: signal.SIGALRM is "
                f"unavailable on this platform; cell ran un-budgeted"
            )
        else:
            warning = (
                f"timeout {timeout:g}s not enforced: SIGALRM only fires on "
                f"the main thread; cell ran un-budgeted"
            )
    old_handler = None
    armed = use_alarm
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)

    def _disarm() -> None:
        nonlocal armed
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
            armed = False

    try:
        try:
            task = get_task(cell.task)
            payload: dict[str, Any] | None = None
            best = float("inf")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()  # repro: allow[DET002] per-cell timing lands under include_timing only
                payload = task(cell)
                best = min(best, time.perf_counter() - start)  # repro: allow[DET002] per-cell timing lands under include_timing only
        finally:
            # Disarm before constructing any CellResult: an alarm landing
            # after the task body would otherwise raise from a frame with
            # no handler and abort the whole sweep instead of one cell.
            try:
                _disarm()
            except CellTimeoutError:
                # The alarm fired in the instant before setitimer(0) took
                # effect.  The itimer is one-shot, so nothing is pending;
                # finish the disarm (restore the handler) and fall through
                # to whichever result the task body produced.
                _disarm()
        return CellResult(
            cell=cell,
            status=STATUS_OK,
            payload=payload,
            seconds=best,
            max_rss_kb=_peak_rss_kb(),
            warning=warning,
        )
    except CellTimeoutError:
        _disarm()
        return CellResult(
            cell=cell,
            status=STATUS_TIMEOUT,
            error=f"cell exceeded timeout of {timeout:g}s",
            seconds=float(timeout or 0.0),
            max_rss_kb=_peak_rss_kb(),
            warning=warning,
        )
    except Exception:
        _disarm()
        return CellResult(
            cell=cell,
            status=STATUS_ERROR,
            error=traceback.format_exc(limit=20)[-_ERROR_LIMIT:],
            max_rss_kb=_peak_rss_kb(),
            warning=warning,
        )


#: Default base of the deterministic exponential retry backoff, seconds.
DEFAULT_RETRY_BACKOFF = 0.05

#: Error-text markers of transient failures worth retrying: a lost MPC
#: shard worker (typed transport) or a lost pool worker.  Deliberately
#: narrow — deterministic model errors (budget violations, protocol
#: errors) would fail identically on every attempt.
_TRANSIENT_MARKERS = ("WorkerCrashError", "worker failed:")


def _is_transient(result: CellResult) -> bool:
    """Whether a failed cell is worth retrying (crash/timeout, not logic)."""
    if result.status == STATUS_TIMEOUT:
        return True
    if result.status == STATUS_ERROR and result.error:
        return any(marker in result.error for marker in _TRANSIENT_MARKERS)
    return False


def _backoff_sleep(attempt: int, backoff: float) -> None:
    """Deterministic exponential backoff before retry ``attempt`` (1-based)."""
    if backoff > 0:
        time.sleep(backoff * (2 ** (attempt - 1)))  # repro: allow[DET002] retry backoff affects wall time only, not payloads


def evaluate_cell_with_retry(
    cell: Cell,
    timeout: float | None = None,
    repeats: int = 1,
    retries: int = 0,
    backoff: float = DEFAULT_RETRY_BACKOFF,
) -> CellResult:
    """:func:`evaluate_cell` plus bounded retry of transient failures.

    Up to ``retries`` re-evaluations with deterministic exponential
    backoff (``backoff * 2**(attempt-1)`` seconds).  Only transient
    failures are retried (see :func:`_is_transient`); tasks are
    deterministic, so a successful retry's payload is byte-identical to
    what a fault-free first attempt would have produced — the attempt
    count lands in the timing-scoped ``CellResult.attempts``, never in
    the deterministic digest.
    """
    result = evaluate_cell(cell, timeout=timeout, repeats=repeats)
    attempts = 1
    while attempts <= retries and _is_transient(result):
        _backoff_sleep(attempts, backoff)
        result = evaluate_cell(cell, timeout=timeout, repeats=repeats)
        attempts += 1
    result.attempts = attempts
    return result


def _evaluate_remote(
    packed: tuple[Cell, float | None, int, int, float]
) -> CellResult:
    """Pool entry point (top-level, so it pickles under any start method)."""
    cell, timeout, repeats, retries, backoff = packed
    return evaluate_cell_with_retry(
        cell, timeout=timeout, repeats=repeats, retries=retries,
        backoff=backoff,
    )


def _install_cache_in_worker(graphs) -> None:
    """Pool initializer for non-``fork`` start methods.

    ``graphs`` is the parent's exported graph cache; it is pickled once
    per worker (not once per cell), which is the whole point — repeated
    cells on the same graph stop paying generation *and* shipping cost.
    """
    install_graph_cache(graphs)


def _prewarm_with_budget(cells, timeout: float | None) -> None:
    """Prewarm the graph cache, bounded by the per-cell time budget.

    Without a bound, a pathologically slow graph construction would hang
    the whole sweep in the parent before any cell's own ``SIGALRM`` is
    armed.  The prewarm therefore runs under one alarm of ``timeout``
    seconds (the same budget a single cell gets); on expiry the remaining
    graphs are simply left unwarmed — their cells build them under their
    own per-cell alarms and time out individually, exactly as without the
    cache.  Where ``SIGALRM`` is unavailable the prewarm is unbounded,
    matching the per-cell timeout's own degradation.
    """
    use_alarm = timeout is not None and timeout > 0 and _can_arm_alarm()
    if not use_alarm:
        prewarm_graph_cache(cells)
        return
    old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        prewarm_graph_cache(cells)
    except CellTimeoutError:
        pass
    finally:
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        except CellTimeoutError:
            # The alarm fired in the instant before setitimer(0) took
            # effect; the itimer is one-shot, so just finish disarming.
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


def _retry_in_fresh_worker(
    cell: Cell, timeout: float | None, repeats: int
) -> CellResult:
    """One retry of a cell whose pool worker died, in a fresh subprocess.

    A cell that took its worker down (OOM-kill, segfault, an injected
    crash that outran recovery) must not be retried in the parent — if it
    kills again it would take the whole sweep with it.  A dedicated
    single-worker pool isolates the blast radius per attempt.
    """
    with ProcessPoolExecutor(max_workers=1) as pool:
        future = pool.submit(
            _evaluate_remote, (cell, timeout, repeats, 0, 0.0)
        )
        try:
            return future.result()
        except Exception as exc:
            return CellResult(
                cell=cell,
                status=STATUS_ERROR,
                error=f"worker failed: {exc!r}",
            )


def run_sweep(
    grid: GridSpec,
    jobs: int = 1,
    timeout: float | None = None,
    repeats: int = 1,
    graph_cache: bool = True,
    retries: int = 0,
    retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    trace: Any = None,
) -> SweepResult:
    """Evaluate every cell of ``grid`` and merge the outcomes.

    ``jobs=1`` runs serially in-process; ``jobs>1`` uses a process pool of
    that many workers with one cell per task (fair scheduling for
    heterogeneous cell costs).  Results are merged in grid order either
    way.  A worker that dies abruptly (OOM-kill, segfault) is recorded as
    an ``error`` result for the cells it took down — the pool raises
    ``BrokenProcessPool`` for their futures rather than hanging, which is
    why this uses ``concurrent.futures`` and not ``multiprocessing.Pool``.

    With ``graph_cache`` (the default) every distinct workload graph of
    the grid is built once in the parent before evaluation starts and
    shared with the workers — inherited for free under the ``fork`` start
    method, shipped once per worker through the pool initializer under
    ``spawn``/``forkserver`` — so cells that differ only in solver-side
    axes (engine, eps, replicates on a fixed ``graph_seed``) stop paying
    graph-generation cost.  Graph construction is deterministic, so cached
    and freshly built graphs are identical and the merged results are
    unaffected.

    ``retries`` bounds per-cell re-evaluation of *transient* failures —
    worker crashes, timeouts, broken pool workers — with deterministic
    exponential backoff (``retry_backoff`` base seconds).  Cells whose
    pool worker died are retried in a fresh single-worker pool, never in
    the parent.  Retried payloads are byte-identical to first-attempt
    payloads (deterministic tasks), so the merged deterministic digest is
    retry-invariant; only the timing-scoped ``attempts`` field records
    the extra work.

    ``trace`` (a :class:`repro.trace.TraceRecorder`) adds one complete
    event per cell to the timeline — the in-process evaluation window on
    serial runs, the submit-to-result window on pool runs.  The tracer is
    a pure observer: payloads and the deterministic digest are unchanged.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    start = time.perf_counter()  # repro: allow[DET002] sweep wall timing is timing-scoped output
    if graph_cache:
        _prewarm_with_budget(grid.cells, timeout)
    if jobs == 1 or len(grid.cells) <= 1:
        results = []
        for cell in grid.cells:
            cell_start = trace.now_ns() if trace is not None else 0
            result = evaluate_cell_with_retry(
                cell, timeout=timeout, repeats=repeats, retries=retries,
                backoff=retry_backoff,
            )
            if trace is not None:
                trace.complete(
                    f"cell:{cell.key}", cell_start, trace.now_ns(),
                    cat="sweep", status=result.status,
                )
            results.append(result)
    else:
        initializer = initargs = None
        if graph_cache and multiprocessing.get_start_method() != "fork":
            initializer = _install_cache_in_worker
            initargs = (export_graph_cache(),)
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=initializer,
            initargs=initargs or (),
        ) as pool:
            futures = [
                (
                    cell,
                    trace.now_ns() if trace is not None else 0,
                    pool.submit(
                        _evaluate_remote,
                        (cell, timeout, repeats, retries, retry_backoff),
                    ),
                )
                for cell in grid.cells
            ]
            results = []
            for cell, submit_ns, future in futures:
                try:
                    results.append(future.result())
                except Exception as exc:
                    # BrokenProcessPool (worker died) or a result that
                    # failed to unpickle; degrade to a per-cell error.
                    results.append(
                        CellResult(
                            cell=cell,
                            status=STATUS_ERROR,
                            error=f"worker failed: {exc!r}",
                        )
                    )
                if trace is not None:
                    trace.complete(
                        f"cell:{cell.key}", submit_ns, trace.now_ns(),
                        cat="sweep", status=results[-1].status,
                    )
        # Pool-level failures never reached the in-worker retry loop;
        # give them their own bounded retries, each in a fresh worker.
        if retries > 0:
            for index, result in enumerate(results):
                attempts = result.attempts
                while (
                    attempts <= retries
                    and result.status == STATUS_ERROR
                    and result.error is not None
                    and result.error.startswith("worker failed:")
                ):
                    _backoff_sleep(attempts, retry_backoff)
                    result = _retry_in_fresh_worker(
                        result.cell, timeout, repeats
                    )
                    attempts += 1
                    result.attempts = attempts
                    results[index] = result
    return SweepResult(
        grid=grid,
        results=results,
        jobs=jobs,
        wall_seconds=time.perf_counter() - start,  # repro: allow[DET002] sweep wall timing is timing-scoped output
    )
