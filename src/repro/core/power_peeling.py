"""Clique peeling on arbitrary powers ``G^r`` — the paper's idea, generalized.

Lemma 6 already generalizes the *trivial* cover to ``G^r``; this module
generalizes Algorithm 1's Phase I.  The structural fact is the same one
the paper exploits for ``r = 2``: the radius-``floor(r/2)`` ball around
any vertex induces a clique in ``G^r`` (two vertices in the ball are at
distance at most ``2 * floor(r/2) <= r``).  Peeling balls of size at
least ``l + 1`` therefore costs at most ``(1 + 1/l)`` times what any
optimum pays on them (Lemma 5's accounting verbatim), and solving the
remainder exactly yields a ``(1 + eps)``-approximation for MVC on
``G^r``.

The implementation here is sequential (the distributed version for
``r = 2`` lives in :mod:`repro.core.mvc_congest`); it serves as the
reference algorithm for the ``G^r`` extension experiments and as an
ablation point for the peeling threshold.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field

import networkx as nx

from repro.core.mvc_congest import normalized_epsilon
from repro.graphs.power import graph_power, _bounded_bfs
from repro.exact.vertex_cover import minimum_vertex_cover

Node = Hashable


@dataclass
class PeelingResult:
    """Outcome of the generalized peeling algorithm."""

    cover: set[Node]
    peels: list[tuple[Node, frozenset[Node]]] = field(default_factory=list)
    residual_vertices: set[Node] = field(default_factory=set)
    residual_solution: set[Node] = field(default_factory=set)

    @property
    def peeled_count(self) -> int:
        return sum(len(ball) for _, ball in self.peels)


def _ball(graph: nx.Graph, center: Node, radius: int) -> set[Node]:
    if radius == 0:
        return {center}
    return set(_bounded_bfs(graph, center, radius)) | {center}


def approx_mvc_power(
    graph: nx.Graph,
    r: int,
    epsilon: float,
    residual_solver: Callable[[nx.Graph], set[Node]] | None = None,
) -> PeelingResult:
    """(1+eps)-approximate minimum vertex cover of ``G^r``.

    Peels radius-``floor(r/2)`` balls holding more than ``ceil(1/eps)``
    still-uncovered vertices (each ball is a clique of ``G^r``), then
    solves ``G^r`` induced on the remainder with ``residual_solver``
    (exact branch and bound by default).
    """
    if r < 2:
        raise ValueError("powers below 2 admit no ball-clique structure")
    if residual_solver is None:
        residual_solver = minimum_vertex_cover
    l, _ = normalized_epsilon(epsilon)
    radius = r // 2

    remaining = set(graph.nodes)
    cover: set[Node] = set()
    peels: list[tuple[Node, frozenset[Node]]] = []

    # Sequential peeling: deterministic order for reproducibility.
    changed = True
    while changed:
        changed = False
        for center in sorted(graph.nodes, key=repr):
            ball = _ball(graph, center, radius) & remaining
            if len(ball) >= l + 1:
                cover |= ball
                remaining -= ball
                peels.append((center, frozenset(ball)))
                changed = True

    power = graph_power(graph, r)
    residual = nx.Graph()
    residual.add_nodes_from(remaining)
    residual.add_edges_from(
        (u, v) for u, v in power.edges if u in remaining and v in remaining
    )
    solution = set(residual_solver(residual))
    return PeelingResult(
        cover=cover | solution,
        peels=peels,
        residual_vertices=set(remaining),
        residual_solution=solution,
    )


def peeling_guarantee(epsilon: float) -> float:
    """The factor the peeling analysis promises: ``1 + 1/ceil(1/eps)``."""
    l, eps_prime = normalized_epsilon(epsilon)
    return 1.0 + eps_prime
