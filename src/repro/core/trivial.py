"""Lemma 6: the zero-round trivial approximation on powers.

Any independent set of ``G^r`` in a connected graph has fewer than
``n / (floor(r/2) + 1)`` vertices, so every vertex cover of ``G^r`` has at
least ``n - n/(floor(r/2)+1)`` vertices and taking *all* vertices is a
``(1 + 1/floor(r/2))``-approximation — a 2-approximation for ``G^2`` that
needs no communication at all, which is the baseline the paper's
``(1+eps)`` algorithms beat.
"""

from __future__ import annotations

import math

import networkx as nx


def trivial_power_cover(graph: nx.Graph) -> set:
    """The all-vertices cover (feasible for every power of ``G``)."""
    return set(graph.nodes)


def trivial_ratio_bound(r: int) -> float:
    """The Lemma 6 guarantee ``1 + 1/floor(r/2)`` (infinite for r = 1)."""
    if r < 1:
        raise ValueError("power must be >= 1")
    half = r // 2
    if half == 0:
        return math.inf
    return 1.0 + 1.0 / half


def independent_set_upper_bound(graph: nx.Graph, r: int) -> float:
    """Lemma 6's bound: any independent set of ``G^r`` has < ``n/alpha``
    vertices, ``alpha = floor(r/2) + 1`` (requires connected ``G``)."""
    if not nx.is_connected(graph):
        raise ValueError("Lemma 6 requires a connected graph")
    alpha = r // 2 + 1
    return graph.number_of_nodes() / alpha


def vertex_cover_lower_bound(graph: nx.Graph, r: int) -> float:
    """``n - n/alpha``: minimum size of any vertex cover of ``G^r``."""
    n = graph.number_of_nodes()
    return n - independent_set_upper_bound(graph, r)
