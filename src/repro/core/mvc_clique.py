"""CONGESTED CLIQUE algorithms for G^2-MVC (Section 3.3).

* :func:`approx_mvc_square_clique_deterministic` — Corollary 10: Phase I of
  Algorithm 1 unchanged, but the leader learns ``F`` directly (each node
  ships its <= 1/eps tokens straight to the leader, Lemma 9) and sends each
  node its personal verdict in one round.  O(eps n + 1/eps) rounds.

* :func:`approx_mvc_square_clique_randomized` — Theorem 11: Phase I is
  replaced by the randomized voting scheme.  A node is a candidate while
  more than ``8/eps + 2`` of its neighbors remain uncovered; candidates
  draw ranks in ``[n^4]``, every remaining vertex votes for its best-ranked
  candidate neighbor, and a candidate receiving at least ``d_R(c)/8`` votes
  adds its remaining neighborhood to the cover.  The potential
  ``sum_c d_R(c)`` drops by a constant factor per phase in expectation
  (Claim 1), giving O(log n) phases w.h.p., then Phase II as above:
  O(log n + 1/eps) rounds total.
"""

from __future__ import annotations

import math
from typing import Any

import networkx as nx

from repro.congest.algorithm import Inbox, NodeAlgorithm, NodeView, Outbox
from repro.congest.clique import CongestedCliqueNetwork
from repro.congest.network import RunStats
from repro.core.mvc_congest import (
    LocalSolver,
    PhaseOneAlgorithm,
    _default_local_solver,
    _trivial_cover_result,
    normalized_epsilon,
    red_edges_from_tokens,
    residual_graph_from_tokens,
)
from repro.core.results import DistributedCoverResult

_TAG_TOKEN = 30
_TAG_DONE = 31
_TAG_VERDICT = 32
_TAG_STATUS = 33
_TAG_CAND = 34
_TAG_VOTE = 35
_TAG_WIN = 36


class DirectUpcastAlgorithm(NodeAlgorithm):
    """Every node ships its tokens straight to the leader (Lemma 9).

    Tokens come from ``node.state['tokens']``; the leader finishes with the
    full list.  Takes ``max_tokens_per_node + 1`` rounds.
    """

    def __init__(self, node: NodeView, leader: int) -> None:
        super().__init__(node)
        self.leader = leader
        self.queue = list(node.state.get("tokens", ()))
        self.collected: list[tuple[int, ...]] = (
            list(self.queue) if node.id == leader else []
        )
        self.waiting = node.n - 1

    def _step(self, inbox: Inbox) -> Outbox:
        if self.node.id == self.leader:
            for msg in inbox.values():
                if msg[0] == _TAG_TOKEN:
                    self.collected.append(tuple(msg[1:]))
            self.waiting -= sum(
                1 for msg in inbox.values() if msg[0] == _TAG_DONE
            )
            if self.waiting <= 0:
                self.finish(self.collected)
            return None
        if self.queue:
            return {self.leader: (_TAG_TOKEN, *self.queue.pop())}
        self.finish(None)
        return {self.leader: (_TAG_DONE,)}

    def on_start(self) -> Outbox:
        if self.node.n == 1:
            self.finish(self.collected)
            return None
        return self._step({})

    def on_round(self, inbox: Inbox) -> Outbox:
        return self._step(inbox)


class VerdictScatterAlgorithm(NodeAlgorithm):
    """The leader tells every node whether it is in the cover: one round."""

    def __init__(self, node: NodeView, leader: int, cover_ids: set[int] | None):
        super().__init__(node)
        self.leader = leader
        self.cover_ids = cover_ids  # only the leader holds a real set

    def on_start(self) -> Outbox:
        if self.node.id != self.leader:
            return None
        assert self.cover_ids is not None
        self.finish(self.node.id in self.cover_ids)
        return {
            other: (_TAG_VERDICT, 1 if other in self.cover_ids else 0)
            for other in range(self.node.n)
            if other != self.node.id
        }

    def on_round(self, inbox: Inbox) -> Outbox:
        msg = inbox.get(self.leader)
        if msg is not None and msg[0] == _TAG_VERDICT:
            self.finish(bool(msg[1]))
        return None


class RandomizedVotingPhaseOne(NodeAlgorithm):
    """Theorem 11's Phase I: randomized voting in O(log n) phases.

    Each phase costs four rounds: status exchange, candidate ranks, votes,
    winner announcements.  The phase budget is ``phases``; by the potential
    argument O(log n) phases suffice w.h.p., and the driver verifies the
    candidate set actually emptied (re-running with a larger budget on the
    rare failure).
    """

    def __init__(self, node: NodeView, threshold: float, phases: int) -> None:
        super().__init__(node)
        self.threshold = threshold
        self.phases = phases
        self.phase = 0
        self.step = 0
        self.in_R = True
        self.in_C = True
        self.in_S = False
        self.r_neighbors: set[int] = set()
        self.is_candidate = False
        self.rank: tuple[int, int] | None = None
        self.candidate_ranks: dict[int, int] = {}
        self.final_status = False
        self.leftover_candidate = False

    def _finalize(self) -> None:
        me = self.node.id
        tokens = [(me, u) for u in sorted(self.r_neighbors)]
        if self.in_R:
            tokens.append((me, me))
        self.node.state["in_S"] = self.in_S
        self.node.state["in_R"] = self.in_R
        self.node.state["tokens"] = tokens
        self.finish(
            {
                "in_S": self.in_S,
                "in_R": self.in_R,
                "leftover_candidate": self.leftover_candidate,
            }
        )

    def on_start(self) -> Outbox:
        if self.phases == 0:
            self.final_status = True
        return self.broadcast((_TAG_STATUS, 1 if self.in_R else 0))

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.final_status:
            self.r_neighbors = {
                sender for sender, msg in inbox.items() if msg[1] == 1
            }
            self._finalize()
            return None
        if self.step == 0:
            self.r_neighbors = {
                sender for sender, msg in inbox.items() if msg[1] == 1
            }
            if self.in_C and len(self.r_neighbors) <= self.threshold:
                self.in_C = False
            self.is_candidate = self.in_C and len(self.r_neighbors) > self.threshold
            self.step = 1
            if self.is_candidate:
                # Announce candidacy to *everyone* (this is the clique):
                # all nodes then agree on whether any candidate survives
                # and can leave Phase I together as soon as none does.
                value = self.node.rng.randrange(self.node.n ** 4)
                self.rank = (value, self.node.id)
                return {
                    other: (_TAG_CAND, value)
                    for other in range(self.node.n)
                    if other != self.node.id
                }
            return None
        if self.step == 1:
            announcements = {
                sender: msg[1]
                for sender, msg in inbox.items()
                if msg[0] == _TAG_CAND
            }
            if not announcements and not self.is_candidate:
                # Globally quiescent: every node observes zero candidates.
                self._finalize()
                return None
            neighbors = set(self.node.neighbors)
            self.candidate_ranks = {
                sender: value
                for sender, value in announcements.items()
                if sender in neighbors
            }
            self.step = 2
            if self.in_R and self.candidate_ranks:
                best = max(
                    self.candidate_ranks,
                    key=lambda c: (self.candidate_ranks[c], c),
                )
                return {best: (_TAG_VOTE,)}
            return None
        if self.step == 2:
            self.step = 3
            if self.is_candidate:
                votes = sum(
                    1 for msg in inbox.values() if msg[0] == _TAG_VOTE
                )
                if votes >= len(self.r_neighbors) / 8.0:
                    self.in_C = False
                    return self.broadcast((_TAG_WIN,))
            return None
        # step 3: winners announced.
        if self.in_R and any(msg[0] == _TAG_WIN for msg in inbox.values()):
            self.in_R = False
            self.in_S = True
        self.phase += 1
        self.step = 0
        if self.phase >= self.phases:
            self.final_status = True
            self.leftover_candidate = self.in_C
        return self.broadcast((_TAG_STATUS, 1 if self.in_R else 0))


def _phase_two_clique(
    network: CongestedCliqueNetwork,
    local_solver: LocalSolver,
) -> tuple[set[int], RunStats, dict[str, Any]]:
    """Shared Phase II: direct upcast to the leader, solve, scatter verdicts."""
    leader = network.n - 1
    gather = network.run(lambda view: DirectUpcastAlgorithm(view, leader))
    tokens = gather.by_id[leader]
    residual = residual_graph_from_tokens(tokens)
    red = red_edges_from_tokens(tokens)
    r_star = set(local_solver(residual, red))
    scatter = network.run(
        lambda view: VerdictScatterAlgorithm(
            view, leader, r_star if view.id == leader else None
        )
    )
    detail = {
        "residual_vertices": set(residual.nodes),
        "leader_solution": set(r_star),
        "upcast_rounds": gather.stats.rounds,
    }
    return r_star, gather.stats + scatter.stats, detail


def approx_mvc_square_clique_deterministic(
    graph: nx.Graph,
    epsilon: float,
    network: CongestedCliqueNetwork | None = None,
    local_solver: LocalSolver | None = None,
    seed: int = 0,
    engine: str | None = None,
) -> DistributedCoverResult:
    """Corollary 10: deterministic (1+eps)-approximation in O(eps n + 1/eps)."""
    if not nx.is_connected(graph):
        raise ValueError("the input graph G must be connected")
    if network is None:
        network = CongestedCliqueNetwork(graph, seed=seed, engine=engine)
    elif engine is not None:
        raise ValueError("pass either network= or engine=, not both")
    if local_solver is None:
        local_solver = _default_local_solver
    if epsilon > 1:
        return _trivial_cover_result(graph, network.word_bits)

    n = network.n
    l, _ = normalized_epsilon(epsilon)
    iterations = n // (l + 1) + 1
    network.reset_state()

    phase_one = network.run(
        lambda view: PhaseOneAlgorithm(view, threshold=l, iterations=iterations)
    )
    r_star, stats2, detail = _phase_two_clique(network, local_solver)
    total = phase_one.stats + stats2

    s_vertices = {
        network.id_of(label)
        for label, out in phase_one.outputs.items()
        if out["in_S"]
    }
    cover = {network.label_of(v) for v in (s_vertices | r_star)}
    detail.update({"mode": "clique-deterministic", "iterations": iterations})
    return DistributedCoverResult(cover=cover, stats=total, detail=detail)


def approx_mvc_square_clique_randomized(
    graph: nx.Graph,
    epsilon: float,
    network: CongestedCliqueNetwork | None = None,
    local_solver: LocalSolver | None = None,
    seed: int = 0,
    phase_budget_factor: float = 6.0,
    engine: str | None = None,
) -> DistributedCoverResult:
    """Theorem 11: randomized (1+eps)-approximation in O(log n + 1/eps).

    The voting phase budget is ``phase_budget_factor * log2(n) + 8``; if
    candidates survive (probability vanishing in n), the budget doubles and
    Phase I reruns — preserving both correctness and the w.h.p. round bound.
    """
    if not nx.is_connected(graph):
        raise ValueError("the input graph G must be connected")
    if network is None:
        network = CongestedCliqueNetwork(graph, seed=seed, engine=engine)
    elif engine is not None:
        raise ValueError("pass either network= or engine=, not both")
    if local_solver is None:
        local_solver = _default_local_solver
    if epsilon > 1:
        return _trivial_cover_result(graph, network.word_bits)

    n = network.n
    threshold = 8.0 / epsilon + 2.0
    phases = int(phase_budget_factor * math.log2(max(n, 2))) + 8

    attempts = 0
    while True:
        attempts += 1
        network.reset_state()
        network.seed = seed + attempts - 1
        phase_one = network.run(
            lambda view: RandomizedVotingPhaseOne(view, threshold, phases)
        )
        leftovers = [
            label
            for label, out in phase_one.outputs.items()
            if out["leftover_candidate"]
        ]
        if not leftovers:
            break
        phases *= 2
        if attempts > 8:
            raise RuntimeError("voting phase failed to converge")

    r_star, stats2, detail = _phase_two_clique(network, local_solver)
    total = phase_one.stats + stats2

    s_vertices = {
        network.id_of(label)
        for label, out in phase_one.outputs.items()
        if out["in_S"]
    }
    cover = {network.label_of(v) for v in (s_vertices | r_star)}
    detail.update(
        {
            "mode": "clique-randomized",
            "phases": phases,
            "attempts": attempts,
            "threshold": threshold,
        }
    )
    return DistributedCoverResult(cover=cover, stats=total, detail=detail)
