"""Theorem 26 / Corollary 27: turning G^2-MVC algorithms into G-MVC ones.

The reduction replaces every edge ``e = {u, w}`` of ``G`` with a 3-vertex
dangling path ``p1-p2-p3`` whose head ``p1`` is adjacent to both ``u`` and
``w`` (the edge itself is deleted).  In the square ``H^2`` the pair
``{u, w}`` is again an edge (through ``p1``), every gadget forces exactly
two vertices into any cover, and ``OPT(H^2) = OPT(G) + 2m`` — so running a
``(1+eps)``-approximate G^2-MVC algorithm on ``H`` and keeping only the
original vertices yields a vertex cover of ``G`` of size at most
``OPT (1 + eps (1 + 2m/OPT))``.  Choosing ``eps = delta n^beta / 3m``
(:func:`conditional_epsilon`) makes that a ``(1+delta)``-approximation,
which is how the paper converts a hypothetical ``o(sqrt(n)/eps)``-round
G^2 algorithm into a sub-quadratic G algorithm (Corollary 27).
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from typing import Any

import networkx as nx

from repro.core.mvc_congest import approx_mvc_square
from repro.core.results import DistributedCoverResult

Node = Hashable


def attach_dangling_paths(graph: nx.Graph) -> tuple[nx.Graph, dict[str, Any]]:
    """Build ``H`` from ``G``: one 3-vertex dangling path per edge.

    Gadget vertices are labeled ``("dp", u, v, i)`` for ``i in {1, 2, 3}``
    (with ``u < v`` by repr).  Returns ``(H, info)`` where ``info`` maps
    each original edge to its gadget head and records ``m``.
    """
    result = nx.Graph()
    result.add_nodes_from(graph.nodes)
    heads: dict[tuple[Node, Node], tuple] = {}
    for u, v in graph.edges:
        a, b = sorted((u, v), key=repr)
        p1, p2, p3 = (("dp", a, b, i) for i in (1, 2, 3))
        result.add_edge(p1, a)
        result.add_edge(p1, b)
        result.add_edge(p1, p2)
        result.add_edge(p2, p3)
        heads[(a, b)] = p1
    info = {"heads": heads, "m": graph.number_of_edges()}
    return result, info


def conditional_epsilon(delta: float, n: int, m: int, beta: float) -> float:
    """The proof's choice ``eps = delta * n^beta / (3m)``."""
    if m == 0:
        return delta
    return delta * (n ** beta) / (3.0 * m)


def mvc_via_square_reduction(
    graph: nx.Graph,
    epsilon: float,
    algorithm: Callable[..., DistributedCoverResult] = approx_mvc_square,
    seed: int = 0,
) -> tuple[set[Node], DistributedCoverResult]:
    """Run a G^2-MVC algorithm on ``H`` and project the cover back to ``G``.

    Returns ``(cover_of_G, raw_result_on_H)``.  Feasibility is
    unconditional: every original edge appears in ``H^2``, so one endpoint
    is in the square cover.
    """
    if graph.number_of_edges() == 0:
        return set(), DistributedCoverResult(cover=set(), stats=None)  # type: ignore[arg-type]
    gadget_graph, _info = attach_dangling_paths(graph)
    result = algorithm(gadget_graph, epsilon, seed=seed)
    original = set(graph.nodes)
    cover = {v for v in result.cover if v in original}
    return cover, result
