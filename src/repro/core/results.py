"""Result records shared by the distributed algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.congest.network import RunStats


@dataclass
class DistributedCoverResult:
    """Outcome of a distributed cover/dominating-set computation.

    Attributes
    ----------
    cover:
        The solution, as a set of original graph labels.
    stats:
        Summed simulator statistics over all stages (rounds, messages,
        bits, worst per-edge load).
    detail:
        Algorithm-specific extras, e.g. Phase I additions, the residual
        vertex set U, the leader's locally computed optimum, iteration
        counts.
    """

    cover: set
    stats: RunStats
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.stats.rounds

    def __len__(self) -> int:
        return len(self.cover)
