"""Theorem 7: (1+eps)-approximate weighted G^2-MVC in CONGEST.

Two changes relative to Algorithm 1 (paper Section 3.2):

1. cardinality candidacy is replaced by the weight condition (7):
   a node ``c`` may take a *weight class* ``N_i(c) cap R`` into the cover
   when ``w*_i(c) <= W_i(c) * eps / (1 + eps)``, where ``N_i(c)`` collects
   the neighbors whose weight lies in ``[w_min(c) * 2^i, w_min(c) *
   2^(i+1))``, ``w*_i`` is the heaviest remaining vertex of the class and
   ``W_i`` the class's remaining total weight.  The condition makes the
   class affordable: its weight is within ``(1+eps)`` of what any optimum
   pays on the clique ``G^2[N_i(c) cap R]``.

2. zero-weight vertices join the cover for free up front (paper's w.l.o.g.).

The winner announcement carries the weight window ``[lo, hi)`` so neighbors
can decide membership locally; windows are O(log n)-bit integers.  Phase II
is unchanged except tokens carry weights.  After Phase I every class
retains fewer than ``2(1+eps)/eps`` vertices (Lemma 8), so per-node token
counts stay ``O(log(n)/eps)``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Any

import networkx as nx

from repro.congest.algorithm import Inbox, NodeAlgorithm, NodeView, Outbox
from repro.congest.network import CongestNetwork, RunStats
from repro.congest.primitives import (
    BfsTreeAlgorithm,
    BroadcastAlgorithm,
    ConvergecastAlgorithm,
)
from repro.core.results import DistributedCoverResult
from repro.graphs.validation import WEIGHT
from repro.exact.vertex_cover import minimum_weighted_vertex_cover

_TAG_STATUS = 20
_TAG_CAND = 21
_TAG_RELAY = 22
_TAG_WIN = 23


class WeightedPhaseOneAlgorithm(NodeAlgorithm):
    """Weight-class based Phase I (Section 3.2).

    ``node.input`` must be the node's positive integer weight.  Zero-weight
    vertices are assumed to have been taken into the cover already and
    participate only as relays (``in_R`` false from the start).
    """

    def __init__(self, node: NodeView, epsilon: float, iterations: int) -> None:
        super().__init__(node)
        if node.input is None or node.input < 0:
            raise ValueError("weighted Phase I requires nonnegative node weights")
        self.epsilon = epsilon
        self.iterations = iterations
        self.weight = int(node.input)
        self.in_R = self.weight > 0
        self.in_S = self.weight == 0
        self.iteration = 0
        self.step = 0
        self.neighbor_weight: dict[int, int] = {}
        self.r_neighbors: set[int] = set()
        self.is_candidate = False
        self.chosen_window: tuple[int, int] | None = None
        self.local_max = -1
        self.final_status = False

    # -- weight classes ------------------------------------------------------

    def _candidate_window(self) -> tuple[int, int] | None:
        """Smallest weight class satisfying condition (7), if any."""
        active = [
            u for u in sorted(self.r_neighbors)
            if self.neighbor_weight[u] > 0
        ]
        if not active:
            return None
        # Class boundaries anchor at the lightest *remaining* neighbor
        # weight (zero-weight vertices joined the cover up front, so every
        # anchor is positive and the doubling sweep terminates).
        w_min = min(self.neighbor_weight[u] for u in active)
        factor = self.epsilon / (1.0 + self.epsilon)
        lo = w_min
        # Classes [w_min 2^i, w_min 2^(i+1)) sweep all O(log n)-bit weights.
        max_weight = max(self.neighbor_weight[u] for u in active)
        while lo <= max_weight:
            hi = lo * 2
            members = [
                u for u in active if lo <= self.neighbor_weight[u] < hi
            ]
            if members:
                total = sum(self.neighbor_weight[u] for u in members)
                heaviest = max(self.neighbor_weight[u] for u in members)
                if heaviest <= total * factor:
                    return lo, hi
            lo = hi
        return None

    def _finalize(self, inbox: Inbox) -> None:
        u_neighbors = sorted(
            sender for sender, msg in inbox.items() if msg[1] == 1
        )
        me = self.node.id
        tokens = [(me, u, self.neighbor_weight[u]) for u in u_neighbors]
        if self.in_R:
            tokens.append((me, me, self.weight))
        self.node.state["in_S"] = self.in_S
        self.node.state["in_R"] = self.in_R
        self.node.state["tokens"] = tokens
        self.finish({"in_S": self.in_S, "in_R": self.in_R})

    # -- protocol --------------------------------------------------------------

    def on_start(self) -> Outbox:
        if self.iterations == 0:
            self.final_status = True
        return self.broadcast((_TAG_STATUS, 1 if self.in_R else 0, self.weight))

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.final_status:
            self._finalize(inbox)
            return None
        if self.step == 0:
            self.r_neighbors = set()
            for sender, msg in inbox.items():
                self.neighbor_weight[sender] = msg[2]
                if msg[1] == 1:
                    self.r_neighbors.add(sender)
            self.chosen_window = self._candidate_window()
            self.is_candidate = self.chosen_window is not None
            self.step = 1
            if self.is_candidate:
                return self.broadcast((_TAG_CAND,))
            return None
        if self.step == 1:
            heard = [sender for sender in inbox]
            self.local_max = max(
                heard + ([self.node.id] if self.is_candidate else [-1])
            )
            self.step = 2
            return self.broadcast((_TAG_RELAY, self.local_max))
        if self.step == 2:
            two_hop_max = max(
                [msg[1] for msg in inbox.values()] + [self.local_max]
            )
            self.step = 3
            if self.is_candidate and self.node.id >= two_hop_max:
                lo, hi = self.chosen_window
                return self.broadcast((_TAG_WIN, lo, hi))
            return None
        # step == 3: winners announced weight windows.
        if self.in_R:
            for msg in inbox.values():
                if msg[0] == _TAG_WIN and msg[1] <= self.weight < msg[2]:
                    self.in_R = False
                    self.in_S = True
                    break
        self.iteration += 1
        self.step = 0
        if self.iteration >= self.iterations:
            self.final_status = True
        return self.broadcast((_TAG_STATUS, 1 if self.in_R else 0, self.weight))

    def wants_wake(self) -> bool:
        # Same guaranteed-traffic cadence as the unweighted Phase I: STATUS
        # and RELAY are broadcast by every live neighbor in lockstep, so
        # steps 0/2 and the finalize round are traffic-woken; steps 1 and 3
        # send regardless of inbox and must self-wake, as must isolated
        # nodes.
        return self.step in (1, 3) or not self.node.neighbors


def _weights_table(graph: nx.Graph, weights: Mapping[Any, int] | None) -> dict:
    if weights is None:
        table = {v: int(graph.nodes[v].get(WEIGHT, 1)) for v in graph.nodes}
    else:
        table = {v: int(weights[v]) for v in graph.nodes}
    if any(w < 0 for w in table.values()):
        raise ValueError("weights must be nonnegative")
    return table


def approx_mwvc_square(
    graph: nx.Graph,
    epsilon: float,
    weights: Mapping[Any, int] | None = None,
    network: CongestNetwork | None = None,
    seed: int = 0,
    engine: str | None = None,
) -> DistributedCoverResult:
    """Theorem 7 end to end: (1+eps)-approximate MWVC of ``G^2``.

    Weights default to the ``weight`` node attribute (missing = 1) and must
    be nonnegative integers (O(log n)-bit in the model).  ``engine`` picks
    the runtime for a freshly built network; incompatible with ``network``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not nx.is_connected(graph):
        raise ValueError("CONGEST algorithms require a connected graph")
    if network is None:
        network = CongestNetwork(graph, seed=seed, engine=engine)
    elif engine is not None:
        raise ValueError("pass either network= or engine=, not both")
    table = _weights_table(graph, weights)
    inputs = dict(table)

    n = network.n
    iterations = n // 2 + 1
    network.reset_state()
    total = RunStats(word_bits=network.word_bits)

    phase_one = network.run(
        lambda view: WeightedPhaseOneAlgorithm(view, epsilon, iterations),
        inputs=inputs,
    )
    total = total + phase_one.stats

    leader = n - 1
    bfs = network.run(lambda view: BfsTreeAlgorithm(view, leader))
    total = total + bfs.stats

    gather = network.run(lambda view: ConvergecastAlgorithm(view))
    total = total + gather.stats
    tokens = gather.by_id[leader]

    members = {u for _, u, _ in tokens}
    residual = nx.Graph()
    residual.add_nodes_from(members)
    token_weights: dict[int, int] = {}
    adjacency: dict[int, set[int]] = {}
    for v, u, w in tokens:
        token_weights[u] = w
        if v != u:
            adjacency.setdefault(v, set()).add(u)
            adjacency.setdefault(u, set()).add(v)
    for v, partners in adjacency.items():
        in_u = [p for p in partners if p in members]
        if v in members:
            residual.add_edges_from((v, p) for p in in_u)
        for i, a in enumerate(in_u):
            for b in in_u[i + 1:]:
                residual.add_edge(a, b)

    r_star = minimum_weighted_vertex_cover(
        residual, weights={v: token_weights[v] for v in residual.nodes}
    )

    network.node_state[leader]["bcast_tokens"] = [(v,) for v in sorted(r_star)]
    spread = network.run(lambda view: BroadcastAlgorithm(view))
    total = total + spread.stats

    s_vertices = {
        network.id_of(label)
        for label, out in phase_one.outputs.items()
        if out["in_S"]
    }
    cover_ids = s_vertices | set(r_star)
    cover = {network.label_of(v) for v in cover_ids}
    return DistributedCoverResult(
        cover=cover,
        stats=total,
        detail={
            "mode": "congest-weighted",
            "iterations": iterations,
            "phase_one_cover": {network.label_of(v) for v in s_vertices},
            "residual_vertices": {network.label_of(v) for v in residual.nodes},
            "leader_solution": {network.label_of(v) for v in r_star},
        },
    )
