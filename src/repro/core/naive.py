"""The congestion baseline from the paper's introduction.

    "consider the problem in which each node needs to learn the input
    values of all of its neighbors in G^2 [...] a simple information-
    theoretic argument gives that the runtime dramatically suffers from
    congestion and the worst case requires a multiplicative overhead
    proportional to the maximum degree of G."

:class:`TwoHopLearningAlgorithm` makes that argument executable.  In
*paced* mode every node relays its adjacency list one identifier per
round — CONGEST-legal, finishing after ``Delta + O(1)`` rounds, the
overhead the paper describes.  In *burst* mode it ships the whole list in
a single message, which the simulator rejects (``CongestionError``) in
strict mode and meters in lenient mode: the per-edge load is Theta(Delta)
words, the information-theoretic bound made visible.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from repro.congest.algorithm import Inbox, NodeAlgorithm, NodeView, Outbox
from repro.congest.network import CongestNetwork, RunResult

_TAG_ID = 70
_TAG_DONE = 71
_TAG_BURST = 72


class TwoHopLearningAlgorithm(NodeAlgorithm):
    """Learn the exact 2-hop neighborhood (ids) of every node.

    Parameters
    ----------
    burst:
        If False (default), pace one neighbor identifier per round per
        edge; if True, send the whole adjacency list at once (exceeding
        the O(log n)-bit budget whenever the degree is super-constant).
    """

    def __init__(self, node: NodeView, burst: bool = False) -> None:
        super().__init__(node)
        self.burst = burst
        self.to_send = sorted(node.neighbors)
        self.cursor = 0
        self.done_neighbors: set[int] = set()
        self.learned: set[int] = set(node.neighbors)

    def _paced_outbox(self) -> Outbox:
        if self.cursor < len(self.to_send):
            payload = (_TAG_ID, self.to_send[self.cursor])
            self.cursor += 1
            return self.broadcast(payload)
        # Mark the DONE as sent so the node moves to the waiting state.
        self.cursor = len(self.to_send) + 1
        return self.broadcast((_TAG_DONE,))

    def on_start(self) -> Outbox:
        if not self.node.neighbors:
            self.finish(set())
            return None
        if self.burst:
            return self.broadcast((_TAG_BURST, *self.to_send))
        return self._paced_outbox()

    def on_round(self, inbox: Inbox) -> Outbox:
        for sender, msg in inbox.items():
            if msg[0] == _TAG_ID:
                self.learned.add(msg[1])
            elif msg[0] == _TAG_BURST:
                self.learned.update(msg[1:])
                self.done_neighbors.add(sender)
            elif msg[0] == _TAG_DONE:
                self.done_neighbors.add(sender)
        if self.burst:
            if len(self.done_neighbors) == len(self.node.neighbors):
                self.learned.discard(self.node.id)
                self.finish(self.learned)
            return None
        if self.cursor > len(self.to_send):
            # DONE already sent; wait until all neighbors are done too.
            if len(self.done_neighbors) == len(self.node.neighbors):
                self.learned.discard(self.node.id)
                self.finish(self.learned)
            return None
        return self._paced_outbox()


def learn_two_hop_neighborhoods(
    graph: nx.Graph,
    burst: bool = False,
    strict: bool = True,
    seed: int = 0,
) -> RunResult:
    """Run the baseline on a fresh network; returns per-node 2-hop id sets.

    With ``burst=True`` and ``strict=True`` this raises
    :class:`~repro.congest.errors.CongestionError` on any graph with a
    vertex of super-budget degree — the paper's point, as an exception.
    """
    network = CongestNetwork(graph, strict=strict, seed=seed)
    return network.run(lambda view: TwoHopLearningAlgorithm(view, burst=burst))
