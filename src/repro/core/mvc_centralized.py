"""Theorem 12 / Algorithm 2: centralized 5/3-approximation for G^2-MVC.

The algorithm runs three parts on the square (local-ratio style):

1. while a triangle exists, take all three of its vertices (we pay 3, any
   optimum pays at least 2);
2. while a vertex of degree at most 3 exists, resolve it with the paper's
   case analysis (pay 1 vs 1, 3 vs 2, or 5 vs 3);
3. 2-approximate the (now triangle-free, minimum-degree-4) remainder with a
   maximal matching.

The remainder is small relative to part 1 (``s1 >= (3/2)|V_R'|``, Lemma 14)
which is what lets the analysis absorb part 3's sloppy factor into an
overall 5/3.  Notably the *execution* never needs to know which square
edges came from ``G`` (red) and which are new (blue) — colors appear only
in the proof — so the same procedure applies to any residual instance
``G^2[U]``, which is how Corollary 17 plugs it into Algorithm 1's leader.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

import networkx as nx

from repro.graphs.power import square
from repro.exact.matching import deterministic_maximal_matching

Node = Hashable


def _sorted_nodes(graph: nx.Graph) -> list[Node]:
    return sorted(graph.nodes, key=repr)


def _find_triangle(graph: nx.Graph) -> tuple[Node, Node, Node] | None:
    for u, v in sorted(graph.edges, key=lambda e: (repr(e[0]), repr(e[1]))):
        common = set(graph[u]) & set(graph[v])
        if common:
            w = min(common, key=repr)
            return u, v, w
    return None


def _take(graph: nx.Graph, vertices: list[Node], cover: set[Node]) -> None:
    for v in vertices:
        if v in graph:
            cover.add(v)
            graph.remove_node(v)


def _drop_isolated(graph: nx.Graph) -> None:
    isolated = [v for v in graph.nodes if graph.degree(v) == 0]
    graph.remove_nodes_from(isolated)


def cover_square_instance(square_graph: nx.Graph) -> tuple[set[Node], dict[str, Any]]:
    """Run Algorithm 2 on an explicit square(-like) instance.

    Returns ``(cover, detail)`` where ``detail`` records the per-part
    vertex sets ``V1, V2, V3`` used in the 5/3 accounting.
    """
    work = nx.Graph()
    work.add_nodes_from(square_graph.nodes)
    work.add_edges_from(square_graph.edges)
    cover: set[Node] = set()
    part1: list[Node] = []
    part2: list[Node] = []
    part3: list[Node] = []

    # Part 1: strip triangles.
    _drop_isolated(work)
    while True:
        triangle = _find_triangle(work)
        if triangle is None:
            break
        taken = list(triangle)
        _take(work, taken, cover)
        part1.extend(taken)
        _drop_isolated(work)

    # Part 2: resolve low-degree vertices (the graph is triangle-free now).
    while True:
        _drop_isolated(work)
        degree_one = [v for v in _sorted_nodes(work) if work.degree(v) == 1]
        if degree_one:
            x = degree_one[0]
            (y,) = work[x]
            _take(work, [y], cover)
            part2.append(y)
            continue
        degree_two = [v for v in _sorted_nodes(work) if work.degree(v) == 2]
        if degree_two:
            x = degree_two[0]
            y1, y2 = sorted(work[x], key=repr)
            # No degree-1 vertices exist, so y1 has a neighbor z != x; the
            # graph is triangle-free, so z != y2.
            z = min((w for w in work[y1] if w != x), key=repr)
            taken = [z, y1, y2]
            _take(work, taken, cover)
            part2.extend(taken)
            continue
        degree_three = [v for v in _sorted_nodes(work) if work.degree(v) == 3]
        if degree_three:
            x = degree_three[0]
            y1, y2, y3 = sorted(work[x], key=repr)
            exclude = {x, y1, y2, y3}
            z1 = min((w for w in work[y1] if w not in exclude), key=repr)
            z2 = min(
                (w for w in work[y2] if w not in exclude and w != z1), key=repr
            )
            taken = [y1, y2, y3, z1, z2]
            _take(work, taken, cover)
            part2.extend(taken)
            continue
        break

    # Part 3: 2-approximate the minimum-degree-4 remainder via matching.
    for edge in deterministic_maximal_matching(work):
        for v in edge:
            if v not in cover:
                cover.add(v)
                part3.append(v)

    detail = {
        "V1": part1,
        "V2": part2,
        "V3": part3,
        "s1": len(part1),
        "s2": len(part2),
        "s3": len(part3),
    }
    return cover, detail


def five_thirds_mvc_square(graph: nx.Graph) -> tuple[set[Node], dict[str, Any]]:
    """Theorem 12: 5/3-approximate MVC of ``G^2`` given ``G``."""
    return cover_square_instance(square(graph))
