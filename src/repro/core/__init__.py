"""The paper's algorithms.

Distributed algorithms run on the :mod:`repro.congest` simulator and return
both a solution and the resources used; centralized algorithms are plain
functions on graphs.
"""

from repro.core.results import DistributedCoverResult
from repro.core.mvc_congest import approx_mvc_square, PhaseOneAlgorithm
from repro.core.mwvc_congest import approx_mwvc_square
from repro.core.mvc_clique import (
    approx_mvc_square_clique_deterministic,
    approx_mvc_square_clique_randomized,
)
from repro.core.mvc_centralized import (
    five_thirds_mvc_square,
    cover_square_instance,
)
from repro.core.trivial import (
    trivial_power_cover,
    trivial_ratio_bound,
    independent_set_upper_bound,
)
from repro.core.estimation import estimate_neighborhood_sizes, EstimationStage
from repro.core.mds_congest import approx_mds_square
from repro.core.conditional import (
    attach_dangling_paths,
    mvc_via_square_reduction,
)
from repro.core.power_peeling import approx_mvc_power, PeelingResult
from repro.core.naive import (
    TwoHopLearningAlgorithm,
    learn_two_hop_neighborhoods,
)
from repro.core.mds_reference import reference_mds_square

__all__ = [
    "DistributedCoverResult",
    "approx_mvc_square",
    "PhaseOneAlgorithm",
    "approx_mwvc_square",
    "approx_mvc_square_clique_deterministic",
    "approx_mvc_square_clique_randomized",
    "five_thirds_mvc_square",
    "cover_square_instance",
    "trivial_power_cover",
    "trivial_ratio_bound",
    "independent_set_upper_bound",
    "estimate_neighborhood_sizes",
    "EstimationStage",
    "approx_mds_square",
    "attach_dangling_paths",
    "mvc_via_square_reduction",
    "approx_mvc_power",
    "PeelingResult",
    "TwoHopLearningAlgorithm",
    "learn_two_hop_neighborhoods",
    "reference_mds_square",
]
