"""Theorem 28: O(log Delta)-approximate G^2-MDS in polylog CONGEST rounds.

We simulate the [CD18] greedy-by-density dominating set algorithm on
``G^2`` while communicating on ``G``.  Each phase runs six sub-stages, all
genuine message-passing algorithms:

1. **density estimation** — every vertex estimates how many uncovered
   vertices it would newly cover (:class:`~repro.core.estimation.
   EstimationStage`, Lemma 29; exact counting is impossible under
   congestion because 2-hop counts double-count across relays);
2. **density flooding** — rounded densities (powers of two, shipped as
   exponents) flood four hops so each vertex knows the max over its
   ``G^2`` 2-neighborhood; local maxima become *candidates*;
3. **ranking and voting** — candidates draw ranks in ``[n^4]``; every
   uncovered vertex votes for the best-ranked candidate within two hops
   (two rounds of minimum propagation);
4. **vote estimation** — per-candidate exponential minima estimate each
   candidate's vote count (the candidates partition the voters, so the
   per-candidate relays share edges without exceeding the word budget);
5. **winners** — a candidate whose vote estimate reaches an eighth of its
   density estimate joins the dominating set; coverage propagates two hops;
6. **termination check** — a convergecast-OR over a BFS tree asks whether
   any vertex remains uncovered (honestly charged to the round budget).

Each phase costs ``O(log n)`` rounds (the two estimation stages dominate)
and the potential argument of [CD18]/[JRS02] gives ``O(log n log Delta)``
phases w.h.p.; a local fallback adds any still-uncovered vertex to the set
if the phase cap is ever hit, so the returned set is always dominating.
"""

from __future__ import annotations

import math
from typing import Any

import networkx as nx

from repro.congest.algorithm import Inbox, NodeAlgorithm, NodeView, Outbox
from repro.congest.network import CongestNetwork, RunStats
from repro.congest.primitives import BFS_STATE, BfsTreeAlgorithm
from repro.core.estimation import EstimationStage, default_samples
from repro.core.results import DistributedCoverResult

_TAG_RHO = 50
_TAG_RANK = 51
_TAG_RANKMIN = 52
_TAG_VW = 53
_TAG_VWMIN = 54
_TAG_WINNER = 55
_TAG_WINREL = 56
_TAG_OR_UP = 57
_TAG_OR_DOWN = 58

_INF = float("inf")


class RhoFloodAlgorithm(NodeAlgorithm):
    """Flood rounded densities four hops; local maxima become candidates."""

    def __init__(self, node: NodeView) -> None:
        super().__init__(node)
        density = node.state.get("density_estimate", 0.0)
        if density > 0:
            self.rho_exp = max(0, math.ceil(math.log2(density)))
        else:
            self.rho_exp = -1
        self.current_max = self.rho_exp
        self.hops = 0

    def on_start(self) -> Outbox:
        return self.broadcast((_TAG_RHO, self.current_max))

    def on_round(self, inbox: Inbox) -> Outbox:
        for msg in inbox.values():
            if msg[1] > self.current_max:
                self.current_max = msg[1]
        self.hops += 1
        if self.hops >= 4:
            is_candidate = self.rho_exp >= 0 and self.rho_exp == self.current_max
            self.node.state["is_candidate"] = is_candidate
            self.finish(is_candidate)
            return None
        return self.broadcast((_TAG_RHO, self.current_max))

    def wants_wake(self) -> bool:
        # Every live neighbor broadcasts its running maximum every round
        # until the lockstep hop counter finishes, so each of the four hop
        # rounds is traffic-woken; only an isolated node must self-wake to
        # run down its hop counter.
        return not self.node.neighbors


class RankVoteAlgorithm(NodeAlgorithm):
    """Candidates draw ranks; uncovered vertices vote for the 2-hop best.

    'Best' is the lexicographic minimum of ``(rank, id)``, matching the
    paper's step 4 tie-break.  Each node also records which neighbors are
    candidates — the vote-estimation stage routes per-candidate minima
    along exactly those edges.
    """

    def __init__(self, node: NodeView) -> None:
        super().__init__(node)
        self.is_candidate = bool(node.state.get("is_candidate", False))
        self.rank = (
            node.rng.randrange(node.n ** 4) if self.is_candidate else -1
        )
        self.step = 0
        self.local_best: tuple[int, int] | None = None
        self.candidate_neighbors: set[int] = set()

    def on_start(self) -> Outbox:
        if self.is_candidate:
            return self.broadcast((_TAG_RANK, self.rank))
        return None

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.step == 0:
            pairs = []
            for sender, msg in inbox.items():
                if msg[0] == _TAG_RANK:
                    self.candidate_neighbors.add(sender)
                    pairs.append((msg[1], sender))
            if self.is_candidate:
                pairs.append((self.rank, self.node.id))
            self.local_best = min(pairs) if pairs else None
            self.node.state["candidate_neighbors"] = self.candidate_neighbors
            self.step = 1
            if self.local_best is not None:
                return self.broadcast(
                    (_TAG_RANKMIN, self.local_best[0], self.local_best[1])
                )
            return None
        # Relayed minima arrived; the vote is the 2-hop best candidate.
        pairs = [
            (msg[1], msg[2]) for msg in inbox.values() if msg[0] == _TAG_RANKMIN
        ]
        if self.local_best is not None:
            pairs.append(self.local_best)
        voted_for = -1
        if self.node.state.get("in_U", False) and pairs:
            voted_for = min(pairs)[1]
        self.node.state["voted_for"] = voted_for
        self.finish(voted_for)
        return None

    # wants_wake: default (always).  Rank traffic is sparse — only
    # candidates broadcast — so neither protocol round is guaranteed any
    # inbound message, yet both advance node state (candidate bookkeeping,
    # the vote, the finish).  Sleeping would desynchronize the two-round
    # state machine; this stage is inherently round-counting.


class VoteEstimationAlgorithm(NodeAlgorithm):
    """Estimate per-candidate vote counts with exponential minima.

    Per sample: voters broadcast ``(candidate, W)``; every node folds a
    per-candidate minimum over its neighborhood and forwards each
    candidate's minimum only to that candidate (one message per edge, so
    the word budget holds no matter how many candidates exist).  The
    candidate inverts the empirical mean of its 2-hop minima.
    """

    def __init__(self, node: NodeView, samples: int) -> None:
        super().__init__(node)
        self.samples = samples
        self.is_candidate = bool(node.state.get("is_candidate", False))
        self.voted_for = int(node.state.get("voted_for", -1))
        self.is_voter = self.voted_for >= 0 and bool(node.state.get("in_U", False))
        self.candidate_neighbors: set[int] = set(
            node.state.get("candidate_neighbors", ())
        )
        self.step = 0  # 0: emitted VW, 1: emitted VWMIN
        self.sample_index = 0
        self.own_w: float | None = None
        self.direct_min = _INF  # candidate-local min for the current sample
        self.minima: list[float] = []

    def _emit_sample(self) -> Outbox:
        self.step = 0
        self.direct_min = _INF
        if self.is_voter:
            self.own_w = self.node.rng.expovariate(1.0)
            return self.broadcast((_TAG_VW, self.voted_for, self.own_w))
        self.own_w = None
        return None

    def _finish_if_done(self) -> Outbox:
        if self.sample_index >= self.samples:
            if any(math.isinf(m) for m in self.minima):
                estimate = 0.0
            else:
                total = sum(self.minima)
                estimate = self.samples / total if total > 0 else 0.0
            self.node.state["vote_estimate"] = estimate
            self.finish(estimate)
            return None
        return self._emit_sample()

    def on_start(self) -> Outbox:
        return self._emit_sample()

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.step == 0:
            # VW messages arrived: fold per-candidate minima.
            groups: dict[int, float] = {}
            if self.is_voter and self.own_w is not None:
                groups[self.voted_for] = self.own_w
            for msg in inbox.values():
                if msg[0] != _TAG_VW:
                    continue
                candidate, value = msg[1], msg[2]
                if value < groups.get(candidate, _INF):
                    groups[candidate] = value
            if self.is_candidate and self.node.id in groups:
                self.direct_min = groups[self.node.id]
            self.step = 1
            outbox = {
                c: (_TAG_VWMIN, groups[c])
                for c in sorted(self.candidate_neighbors)
                if c in groups
            }
            return outbox or None
        # VWMIN messages arrived: candidates close the sample.
        sample_min = self.direct_min
        for msg in inbox.values():
            if msg[0] == _TAG_VWMIN and msg[1] < sample_min:
                sample_min = msg[1]
        if self.is_candidate:
            self.minima.append(sample_min)
        else:
            self.minima.append(_INF)
        self.sample_index += 1
        return self._finish_if_done()

    # wants_wake: default (always).  VW traffic exists only where voters
    # are and VWMIN flows only to candidates, so no round of the sample
    # cadence has guaranteed traffic for a given node — but every node
    # advances its sample counter each round to stay in lockstep with the
    # voters.  A round-counting stage cannot sleep.


class WinnerAlgorithm(NodeAlgorithm):
    """Successful candidates join the set; coverage propagates two hops."""

    def __init__(self, node: NodeView) -> None:
        super().__init__(node)
        self.is_candidate = bool(node.state.get("is_candidate", False))
        votes = float(node.state.get("vote_estimate", 0.0))
        density = float(node.state.get("density_estimate", 0.0))
        self.success = (
            self.is_candidate and density > 0 and votes >= density / 8.0
        )
        self.step = 0
        self.saw_winner = self.success

    def on_start(self) -> Outbox:
        if self.success:
            self.node.state["in_DS"] = True
        if self.success:
            return self.broadcast((_TAG_WINNER,))
        return None

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.step == 0:
            if any(msg[0] == _TAG_WINNER for msg in inbox.values()):
                self.saw_winner = True
            self.step = 1
            return self.broadcast((_TAG_WINREL, 1 if self.saw_winner else 0))
        covered = self.saw_winner or any(
            msg[0] == _TAG_WINREL and msg[1] == 1 for msg in inbox.values()
        )
        if covered:
            self.node.state["in_U"] = False
        self.finish(
            {
                "in_DS": bool(self.node.state.get("in_DS", False)),
                "in_U": bool(self.node.state.get("in_U", False)),
            }
        )
        return None

    def wants_wake(self) -> bool:
        # The step-0 round must run regardless of inbox (every node
        # broadcasts WINREL there, winner nearby or not); the step-1 round
        # is traffic-woken because every live neighbor broadcast WINREL in
        # lockstep.  Isolated nodes self-wake throughout.
        return self.step == 0 or not self.node.neighbors


class GlobalOrAlgorithm(NodeAlgorithm):
    """Convergecast-OR of a state bit over the BFS tree, decision broadcast.

    Every node finishes with the global OR; costs O(depth) rounds.  This is
    the honest termination check between phases.
    """

    def __init__(self, node: NodeView, bit_key: str = "in_U") -> None:
        super().__init__(node)
        tree = node.state.get(BFS_STATE)
        if tree is None:
            raise ValueError("GlobalOrAlgorithm requires a BFS tree in state")
        self.parent: int = tree["parent"]
        self.pending: set[int] = set(tree["children"])
        self.children: tuple[int, ...] = tree["children"]
        self.value = 1 if node.state.get(bit_key, False) else 0
        self.reported = False

    def _maybe_report(self) -> Outbox:
        if self.pending or self.reported:
            return None
        self.reported = True
        if self.parent < 0:
            # Root: decision made; inform children and finish.
            self.finish(bool(self.value))
            if not self.children:
                return None
            return self.send_many(self.children, (_TAG_OR_DOWN, self.value))
        return {self.parent: (_TAG_OR_UP, self.value)}

    def on_start(self) -> Outbox:
        return self._maybe_report()

    def on_round(self, inbox: Inbox) -> Outbox:
        for sender, msg in inbox.items():
            if msg[0] == _TAG_OR_UP:
                self.pending.discard(sender)
                self.value |= msg[1]
            elif msg[0] == _TAG_OR_DOWN:
                decision = msg[1]
                self.finish(bool(decision))
                if not self.children:
                    return None
                return self.send_many(self.children, (_TAG_OR_DOWN, decision))
        return self._maybe_report()

    def wants_wake(self) -> bool:
        # Purely reactive: progress happens only when an OR_UP or OR_DOWN
        # arrives — the report fires in the same invocation that drains the
        # last pending child, and an empty-inbox call is a strict no-op.
        # This is the stage where the activity engine's sleeping genuinely
        # pays: during the O(depth) convergecast only the moving frontier
        # runs, not all n nodes every round.
        return False


def approx_mds_square(
    graph: nx.Graph,
    network: CongestNetwork | None = None,
    seed: int = 0,
    samples: int | None = None,
    max_phases: int | None = None,
    engine: str | None = None,
) -> DistributedCoverResult:
    """Run the Theorem 28 algorithm end to end.

    Returns a dominating set of ``G^2`` (always feasible); w.h.p. the set is
    an O(log Delta)-approximation computed in polylog rounds.  ``engine``
    picks the runtime for a freshly built network; incompatible with
    ``network``.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise ValueError("CONGEST algorithms require a connected graph")
    if network is None:
        network = CongestNetwork(graph, seed=seed, engine=engine)
    elif engine is not None:
        raise ValueError("pass either network= or engine=, not both")
    n = network.n
    if samples is None:
        samples = default_samples(n)
    if max_phases is None:
        max_phases = 50 * (int(math.log2(max(n, 2))) + 2)

    network.reset_state()
    total = RunStats(word_bits=network.word_bits)

    bfs = network.run(lambda view: BfsTreeAlgorithm(view, n - 1), label="bfs")
    total = total + bfs.stats
    for node_id in network.ids():
        network.node_state[node_id]["in_U"] = True
        network.node_state[node_id]["in_DS"] = False

    phases = 0
    cleanup: set[int] = set()
    ds_curve: list[int] = []
    u_curve: list[int] = []
    while True:
        phases += 1
        for stage_label, stage in (
            ("estimate", lambda view: EstimationStage(view, samples)),
            ("rho-flood", RhoFloodAlgorithm),
            ("rank-vote", RankVoteAlgorithm),
            ("vote-estimate", lambda view: VoteEstimationAlgorithm(view, samples)),
            ("winner", WinnerAlgorithm),
        ):
            result = network.run(stage, label=stage_label)
            total = total + result.stats
        check = network.run(
            lambda view: GlobalOrAlgorithm(view, "in_U"), label="global-or"
        )
        total = total + check.stats
        # Per-phase convergence points, straight from the model state the
        # driver already reads (|DS| grows, |U| shrinks): deterministic
        # given the seed, identical across engines and backends.
        ds_curve.append(
            sum(
                1
                for node_id in network.ids()
                if network.node_state[node_id].get("in_DS", False)
            )
        )
        u_curve.append(
            sum(
                1
                for node_id in network.ids()
                if network.node_state[node_id].get("in_U", False)
            )
        )
        any_uncovered = next(iter(check.outputs.values()))
        if not any_uncovered:
            break
        if phases >= max_phases:
            # Local fallback: uncovered vertices join the set themselves
            # (zero communication); keeps the output always dominating.
            cleanup = {
                node_id
                for node_id in network.ids()
                if network.node_state[node_id].get("in_U", False)
            }
            break

    ds_ids = {
        node_id
        for node_id in network.ids()
        if network.node_state[node_id].get("in_DS", False)
    } | cleanup
    dominating = {network.label_of(v) for v in ds_ids}

    collector = getattr(network, "collector", None)
    if collector is not None:
        collector.record_convergence(
            "dominating_set_size", ds_curve + [len(ds_ids)]
        )
        collector.record_convergence("uncovered_nodes", u_curve)

    return DistributedCoverResult(
        cover=dominating,
        stats=total,
        detail={
            "mode": "congest-mds",
            "phases": phases,
            "samples": samples,
            "cleanup": {network.label_of(v) for v in cleanup},
        },
    )
