"""Sequential reference implementation of the Theorem 28 MDS pipeline.

Identical decision logic to :mod:`repro.core.mds_congest` — rounded
densities, 2-neighborhood local maxima as candidates, random ranks,
voting, success at an eighth of the coverage — but computed centrally
with *exact* counts instead of Lemma 29 estimates.  Comparing the two
isolates exactly what the congestion-driven estimation costs (nothing in
approximation guarantee, a polylog factor in rounds, some noise in
practice); this is the idealized [CD18]-on-``G^2`` the paper simulates.
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable
from typing import Any

import networkx as nx

from repro.graphs.power import square, two_hop_neighbors

Node = Hashable


def reference_mds_square(
    graph: nx.Graph, seed: int = 0, max_phases: int | None = None
) -> tuple[set[Node], dict[str, Any]]:
    """Greedy-by-density MDS of ``G^2`` with exact counts.

    Returns ``(dominating_set, detail)`` with the per-phase history in
    ``detail['phases']``.
    """
    rng = random.Random(seed)
    n = graph.number_of_nodes()
    if n == 0:
        return set(), {"phases": []}
    if max_phases is None:
        max_phases = 50 * (int(math.log2(max(n, 2))) + 2)

    closed2 = {
        v: two_hop_neighbors(graph, v) | {v} for v in graph.nodes
    }
    sq = square(graph)
    uncovered = set(graph.nodes)
    chosen: set[Node] = set()
    history: list[dict[str, int]] = []

    while uncovered and len(history) < max_phases:
        coverage = {v: len(closed2[v] & uncovered) for v in graph.nodes}
        rho = {
            v: 1 << max(0, math.ceil(math.log2(c))) if c > 0 else 0
            for v, c in coverage.items()
        }
        candidates = {
            v
            for v in graph.nodes
            if rho[v] > 0
            and all(rho[v] >= rho[u] for u in closed2[v] if u != v)
        }
        # Draw ranks in sorted label order: consuming the RNG in set
        # iteration order would make the sample depend on hash layout,
        # which varies across processes for non-integer labels.
        ordered = sorted(candidates, key=repr)
        ranks = {c: (rng.randrange(n ** 4), repr(c)) for c in ordered}
        votes: dict[Node, int] = {c: 0 for c in ordered}
        for u in sorted(uncovered, key=repr):
            in_range = [c for c in ordered if c == u or sq.has_edge(u, c)]
            if in_range:
                votes[min(in_range, key=lambda c: ranks[c])] += 1
        winners = {
            c for c in ordered if votes[c] >= coverage[c] / 8.0
        }
        newly_covered = set()
        for w in sorted(winners, key=repr):
            newly_covered |= closed2[w] & uncovered
        history.append(
            {
                "candidates": len(candidates),
                "winners": len(winners),
                "covered": len(newly_covered),
            }
        )
        chosen |= winners
        uncovered -= newly_covered

    # Mirror the distributed pipeline's always-feasible fallback.
    chosen |= uncovered
    return chosen, {"phases": history, "cleanup": len(uncovered)}
