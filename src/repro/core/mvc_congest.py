"""Algorithm 1: deterministic (1+eps)-approximate G^2-MVC in CONGEST.

Reproduces Theorem 1 of the paper.  The algorithm runs in O(n/eps) rounds:

* **Phase I** (:class:`PhaseOneAlgorithm`): repeatedly, any node ``c`` that
  still has more than ``1/eps`` neighbors outside the cover adds its whole
  neighborhood to the cover.  ``N(c) cap R`` induces a clique in ``G^2``, so
  the optimum pays at least ``|N(c) cap R| - 1`` where we pay
  ``|N(c) cap R|`` — Lemma 5's (1+eps) accounting.  Symmetry is broken by
  maximum identifier among candidates within two hops (as the paper
  prescribes), which our implementation realizes in four communication
  rounds per iteration: status exchange, candidate announcement, 2-hop max
  relay, winner announcement.  Each iteration with a surviving candidate
  has a winner removing more than ``1/eps`` vertices, so
  ``floor(eps * n) + 1`` iterations always suffice.

* **Phase II**: the leader (maximum id — identifiers are common knowledge)
  builds a BFS tree, every node pipelines its at most ``1/eps`` incident
  edges of ``F = {{u, v} in E : u in U}`` upwards (Lemma 2), the leader
  reconstructs ``H = G^2[U]`` from ``F`` alone (Lemma 3), solves MVC on
  ``H`` locally (CONGEST allows unbounded local computation) and pipelines
  the solution back down.

Every bit of the above crosses a metered simulator edge; the returned
statistics are honest CONGEST costs.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from typing import Any

import networkx as nx

from repro.congest.algorithm import Inbox, NodeAlgorithm, NodeView, Outbox
from repro.congest.network import CongestNetwork, RunStats
from repro.congest.primitives import (
    BfsTreeAlgorithm,
    BroadcastAlgorithm,
    ConvergecastAlgorithm,
)
from repro.core.results import DistributedCoverResult
from repro.exact.vertex_cover import minimum_vertex_cover

_TAG_STATUS = 10
_TAG_CAND = 11
_TAG_RELAY = 12
_TAG_WIN = 13

LocalSolver = Callable[[nx.Graph, set[frozenset[int]]], set[int]]


def normalized_epsilon(epsilon: float) -> tuple[int, float]:
    """Return ``(l, eps')`` with ``eps' = 1/l`` and ``l = ceil(1/eps)``.

    Lemma 5 requires ``1/eps`` to be an integer; Theorem 1's proof rounds
    ``eps`` down to ``1/ceil(1/eps)``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    l = max(1, math.ceil(1.0 / epsilon))
    return l, 1.0 / l


class PhaseOneAlgorithm(NodeAlgorithm):
    """Phase I of Algorithm 1 (and of its weighted/clique variants).

    Runs ``iterations`` rounds of the candidate/winner protocol with
    candidacy threshold ``|N(c) cap R| > threshold``.  On completion each
    node records in its stage state:

    * ``in_S`` — whether the node joined the cover during Phase I,
    * ``in_R`` — whether it is still uncovered (``U = V minus S``),
    * ``u_neighbors`` — its neighbors inside ``U``,
    * ``tokens`` — the convergecast tokens encoding its incident ``F``
      edges (pairs ``(v, u)``) plus the self-marker ``(v, v)`` if
      ``v in U``.
    """

    def __init__(self, node: NodeView, threshold: int, iterations: int) -> None:
        super().__init__(node)
        self.threshold = threshold
        self.iterations = iterations
        self.iteration = 0
        self.step = 0  # 0=sent status, 1=sent cand, 2=sent relay, 3=sent win
        self.in_R = True
        self.in_C = True
        self.in_S = False
        self.r_neighbors: set[int] = set()
        self.is_candidate = False
        self.local_max = -1
        self.final_status = False
        #: Iteration at which this node joined S (None if it never did).
        #: Model-level and engine-independent, so drivers may derive
        #: deterministic convergence curves from it.
        self.join_iteration: int | None = None

    # -- candidacy ---------------------------------------------------------

    def _active_candidate(self) -> bool:
        return self.in_C and len(self.r_neighbors) > self.threshold

    def _finalize(self, inbox: Inbox) -> None:
        u_neighbors = sorted(
            sender for sender, msg in inbox.items() if msg[1] == 1
        )
        me = self.node.id
        tokens = [(me, u) for u in u_neighbors]
        if self.in_R:
            tokens.append((me, me))
        self.node.state["in_S"] = self.in_S
        self.node.state["in_R"] = self.in_R
        self.node.state["u_neighbors"] = u_neighbors
        self.node.state["tokens"] = tokens
        self.finish(
            {
                "in_S": self.in_S,
                "in_R": self.in_R,
                "join_iteration": self.join_iteration,
            }
        )

    # -- protocol ----------------------------------------------------------

    def on_start(self) -> Outbox:
        if self.iterations == 0:
            self.final_status = True
        return self.broadcast((_TAG_STATUS, 1 if self.in_R else 0))

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.final_status:
            self._finalize(inbox)
            return None
        if self.step == 0:
            # Statuses arrived; announce candidacy.
            self.r_neighbors = {
                sender for sender, msg in inbox.items() if msg[1] == 1
            }
            self.is_candidate = self._active_candidate()
            self.step = 1
            if self.is_candidate:
                return self.broadcast((_TAG_CAND,))
            return None
        if self.step == 1:
            # Candidate announcements arrived; relay the 1-hop max.
            heard = [sender for sender in inbox]
            self.local_max = max(
                heard + ([self.node.id] if self.is_candidate else [-1])
            )
            self.step = 2
            return self.broadcast((_TAG_RELAY, self.local_max))
        if self.step == 2:
            # 2-hop maxima arrived; winners announce.
            two_hop_max = max(
                [msg[1] for msg in inbox.values()] + [self.local_max]
            )
            self.step = 3
            if self.is_candidate and self.node.id >= two_hop_max:
                self.in_C = False  # the winner leaves the candidate set
                return self.broadcast((_TAG_WIN,))
            return None
        # step == 3: winner announcements arrived; neighbors join the cover.
        if self.in_R and any(msg[0] == _TAG_WIN for msg in inbox.values()):
            self.in_R = False
            self.in_S = True
            self.join_iteration = self.iteration
        self.iteration += 1
        self.step = 0
        if self.iteration >= self.iterations:
            self.final_status = True
        return self.broadcast((_TAG_STATUS, 1 if self.in_R else 0))

    def wants_wake(self) -> bool:
        # Guaranteed-traffic cadence (see NodeAlgorithm.wants_wake): every
        # live neighbor broadcasts STATUS at each cycle start and RELAY at
        # step 1, and all nodes advance in lockstep, so the invocations
        # that *process* those broadcasts (steps 0 and 2, and the final
        # finalize round) are always traffic-woken.  Steps 1 and 3 must
        # self-wake: the node broadcasts RELAY/STATUS there even when its
        # own inbox was empty (no candidate or no winner nearby).  An
        # isolated node never receives traffic and must always self-wake.
        return self.step in (1, 3) or not self.node.neighbors


def residual_graph_from_tokens(tokens: Iterable[tuple[int, int]]) -> nx.Graph:
    """Reconstruct ``H = G^2[U]`` from the leader's tokens (Lemma 3).

    Tokens are pairs ``(v, u)`` meaning "``{v, u}`` is an edge of ``G`` and
    ``u in U``", plus self-markers ``(v, v)`` meaning ``v in U``.  Following
    the paper: ``F' = F cup F'_1`` where ``F'_1`` joins two ``U``-vertices
    with a common ``F``-neighbor.
    """
    members: set[int] = set()
    adjacency: dict[int, set[int]] = {}
    for v, u in tokens:
        members.add(u)
        if v != u:
            adjacency.setdefault(v, set()).add(u)
            adjacency.setdefault(u, set()).add(v)
    residual = nx.Graph()
    residual.add_nodes_from(members)
    for v, partners in adjacency.items():
        in_u = [p for p in partners if p in members]
        if v in members:
            residual.add_edges_from((v, p) for p in in_u)
        # Two U-vertices sharing the F-neighbor v are G^2-adjacent.
        for i, a in enumerate(in_u):
            for b in in_u[i + 1:]:
                residual.add_edge(a, b)
    return residual


def red_edges_from_tokens(
    tokens: Iterable[tuple[int, int]]
) -> set[frozenset[int]]:
    """The ``F`` edges with both endpoints in ``U`` (the 'red' edges of H)."""
    members = {u for _, u in tokens}
    return {
        frozenset((v, u))
        for v, u in tokens
        if v != u and v in members and u in members
    }


def _default_local_solver(
    residual: nx.Graph, red: set[frozenset[int]]
) -> set[int]:
    return minimum_vertex_cover(residual)


def _trivial_cover_result(graph: nx.Graph, word_bits: int) -> DistributedCoverResult:
    """eps > 1: all vertices form a 2 <= (1+eps) approximation (Lemma 6)."""
    return DistributedCoverResult(
        cover=set(graph.nodes),
        stats=RunStats(word_bits=word_bits),
        detail={"mode": "trivial", "iterations": 0},
    )


def approx_mvc_square(
    graph: nx.Graph,
    epsilon: float,
    network: CongestNetwork | None = None,
    local_solver: LocalSolver | None = None,
    seed: int = 0,
    engine: str | None = None,
) -> DistributedCoverResult:
    """Run Algorithm 1 end to end on the CONGEST simulator.

    Parameters
    ----------
    graph:
        Connected communication network ``G``; the returned set covers
        ``G^2``.
    epsilon:
        Approximation slack; the cover is at most ``(1+eps) * OPT(G^2)``.
    network:
        Optionally a pre-built network (e.g. with a metered cut or custom
        word limit); defaults to a fresh :class:`CongestNetwork`.
    local_solver:
        How the leader solves the residual instance ``H = G^2[U]``.
        Defaults to exact branch and bound; Corollary 17 plugs in the
        centralized 5/3-approximation instead.
    engine:
        Execution engine for a freshly built network (``"v1"``/``"v2"``);
        incompatible with passing ``network``.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph must be non-empty")
    if not nx.is_connected(graph):
        raise ValueError("CONGEST algorithms require a connected graph")
    if network is None:
        network = CongestNetwork(graph, seed=seed, engine=engine)
    elif engine is not None:
        raise ValueError("pass either network= or engine=, not both")
    if local_solver is None:
        local_solver = _default_local_solver
    if epsilon > 1:
        return _trivial_cover_result(graph, network.word_bits)

    n = network.n
    l, _eps_prime = normalized_epsilon(epsilon)
    iterations = n // (l + 1) + 1
    network.reset_state()
    total = RunStats(word_bits=network.word_bits)

    # Phase I.
    phase_one = network.run(
        lambda view: PhaseOneAlgorithm(view, threshold=l, iterations=iterations),
        label="phase1",
    )
    total = total + phase_one.stats

    # Phase II: BFS tree, upcast F, local solve, broadcast solution.
    leader = n - 1
    bfs = network.run(lambda view: BfsTreeAlgorithm(view, leader), label="bfs")
    total = total + bfs.stats

    gather = network.run(lambda view: ConvergecastAlgorithm(view), label="upcast")
    total = total + gather.stats
    tokens = gather.by_id[leader]

    residual = residual_graph_from_tokens(tokens)
    red = red_edges_from_tokens(tokens)
    r_star = set(local_solver(residual, red))
    unknown = r_star - set(residual.nodes)
    if unknown:
        raise ValueError(f"local solver returned foreign vertices: {unknown}")

    network.node_state[leader]["bcast_tokens"] = [(v,) for v in sorted(r_star)]
    spread = network.run(lambda view: BroadcastAlgorithm(view), label="broadcast")
    total = total + spread.stats

    s_vertices = {
        network.id_of(label)
        for label, out in phase_one.outputs.items()
        if out["in_S"]
    }
    cover_ids = s_vertices | r_star
    cover = {network.label_of(v) for v in cover_ids}

    collector = getattr(network, "collector", None)
    if collector is not None:
        # Deterministic convergence curves from the join stamps: cover
        # growth per Phase I iteration (closed by the final cover once
        # the leader's residual solution lands) and the shrinking
        # uncovered set |R|.  Derived from model state, never engine
        # scheduling, so the curves are engine- and backend-invariant.
        joins = sorted(
            out["join_iteration"]
            for out in phase_one.outputs.values()
            if out["in_S"]
        )
        cover_curve = []
        joined = 0
        for i in range(iterations):
            while joined < len(joins) and joins[joined] <= i:
                joined += 1
            cover_curve.append(joined)
        collector.record_convergence(
            "cover_size", cover_curve + [len(cover_ids)]
        )
        collector.record_convergence(
            "uncovered_nodes", [n - c for c in cover_curve]
        )

    return DistributedCoverResult(
        cover=cover,
        stats=total,
        detail={
            "mode": "congest",
            "iterations": iterations,
            "threshold": l,
            "phase_one_cover": {network.label_of(v) for v in s_vertices},
            "residual_vertices": {
                network.label_of(v) for v in residual.nodes
            },
            "leader_solution": {network.label_of(v) for v in r_star},
            "phase_rounds": {
                "phase1": phase_one.stats.rounds,
                "bfs": bfs.stats.rounds,
                "upcast": gather.stats.rounds,
                "broadcast": spread.stats.rounds,
            },
        },
    )
