"""Lemma 29: randomized 2-hop neighborhood size estimation.

To simulate the [CD18] dominating-set algorithm on ``G^2`` without shipping
whole neighbor lists (which congestion forbids), every member ``u`` of a
set ``U`` draws exponential variables ``W_1^u .. W_r^u`` with mean 1; the
minimum of exponentials over a set of size ``d`` is exponential with mean
``1/d``, so each vertex ``v`` can recover ``d_v = |N^2[v] cap U|`` from the
empirical mean of the minima over its (closed) 2-hop neighborhood.  Two
rounds propagate a minimum two hops, so ``r`` samples cost ``2r`` rounds;
``r = Theta(log n)`` gives ``(1 +- eps)`` concentration w.h.p. (Lemma 30,
Cramer).  Floats model the O(log n)-bit fixed-point reals the paper argues
are sufficient.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import Any

from repro.congest.algorithm import Inbox, NodeAlgorithm, NodeView, Outbox
from repro.congest.network import CongestNetwork, RunResult

_TAG_SAMPLE = 40
_TAG_MIN = 41

#: Estimates below this are reported as zero (empty 2-hop membership).
_INFINITY = float("inf")


class EstimationStage(NodeAlgorithm):
    """One run of the Lemma 29 estimator.

    Membership is read from ``node.state[member_key]`` (missing = False).
    On completion every node's output (and ``node.state[result_key]``) is
    its estimate of ``|N^2[v] cap U|`` — *closed* 2-hop neighborhood, which
    is the coverage count ``|C_v|`` the MDS algorithm needs.
    """

    def __init__(
        self,
        node: NodeView,
        samples: int,
        member_key: str = "in_U",
        result_key: str = "density_estimate",
    ) -> None:
        super().__init__(node)
        if samples < 1:
            raise ValueError("need at least one sample")
        self.samples = samples
        self.member = bool(node.state.get(member_key, False))
        self.result_key = result_key
        self.sample_index = 0
        self.step = 0  # 0: we just sent our W, 1: we just sent the 1-hop min
        self.own_w: float | None = None
        self.hop1_min = _INFINITY
        self.minima: list[float] = []

    def _emit_sample(self) -> Outbox:
        self.step = 0
        if self.member:
            self.own_w = self.node.rng.expovariate(1.0)
            return self.broadcast((_TAG_SAMPLE, self.own_w))
        self.own_w = None
        return None

    def on_start(self) -> Outbox:
        return self._emit_sample()

    def on_round(self, inbox: Inbox) -> Outbox:
        if self.step == 0:
            # W values arrived: fold into the 1-hop (closed) minimum.
            values = [msg[1] for msg in inbox.values() if msg[0] == _TAG_SAMPLE]
            if self.own_w is not None:
                values.append(self.own_w)
            self.hop1_min = min(values) if values else _INFINITY
            self.step = 1
            encoded = self.hop1_min if self.hop1_min < _INFINITY else -1.0
            return self.broadcast((_TAG_MIN, encoded))
        # 1-hop minima arrived: fold into the 2-hop minimum.
        values = [
            msg[1]
            for msg in inbox.values()
            if msg[0] == _TAG_MIN and msg[1] >= 0.0
        ]
        if self.hop1_min < _INFINITY:
            values.append(self.hop1_min)
        self.minima.append(min(values) if values else _INFINITY)
        self.sample_index += 1
        if self.sample_index >= self.samples:
            estimate = self._estimate()
            self.node.state[self.result_key] = estimate
            self.finish(estimate)
            return None
        return self._emit_sample()

    def _estimate(self) -> float:
        if any(math.isinf(m) for m in self.minima):
            return 0.0
        total = sum(self.minima)
        if total <= 0.0:
            return 0.0
        return self.samples / total

    def wants_wake(self) -> bool:
        # Two-round sample cadence with guaranteed traffic on the second
        # round: after emitting W values (step just reset to 0) the next
        # invocation must run even with an empty inbox — every node
        # broadcasts its 1-hop minimum there, member nearby or not.  After
        # that broadcast (step 1) every live neighbor has broadcast one
        # too, so the fold round is traffic-woken.  Isolated nodes always
        # self-wake.
        return self.step == 0 or not self.node.neighbors


def default_samples(n: int, factor: float = 8.0) -> int:
    """``ceil(factor * log2 n)`` samples (Lemma 30 wants Theta(log n))."""
    return max(4, math.ceil(factor * math.log2(max(n, 2))))


def estimate_neighborhood_sizes(
    network: CongestNetwork,
    members: Iterable[Any],
    samples: int | None = None,
) -> tuple[dict[Any, float], RunResult]:
    """Estimate ``|N^2[v] cap U|`` for every vertex, ``U = members``.

    Returns ``(estimates_by_label, run_result)``.
    """
    if samples is None:
        samples = default_samples(network.n)
    network.reset_state()
    member_ids = {network.id_of(label) for label in members}
    for node_id in network.ids():
        network.node_state[node_id]["in_U"] = node_id in member_ids
    result = network.run(lambda view: EstimationStage(view, samples))
    return dict(result.outputs), result
