"""The determinism contract's shared vocabulary.

Every parity guarantee in this repository — engine v1/v2 payload parity,
byte-identical shuffle ledgers at any worker count, crash-recovered runs
matching fault-free runs, stable ``deterministic_sha256`` digests — rests
on one split: a *deterministic section* (a pure function of the workload
cell) versus a *timing/variant section* (whatever legitimately depends on
the machine, the scheduler or the execution layout).  This module is the
single definition of which field names belong to the timing side, so the
three independent enforcement points stay in agreement:

* :mod:`repro.analysis` — the static analyzer's SCOPE rules flag these
  names flowing into a deterministic payload builder;
* :func:`repro.metrics.collector.validate_metrics` — rejects them inside
  an emitted document's deterministic section (``timing-scope``
  constraint);
* :func:`repro.trace.validate.validate_trace` — rejects them as counter
  arguments, where only deterministic per-round series belong
  (``counter-integer-series`` constraint).

Growing the list is an API decision, not a local edit: adding a name here
makes the analyzer police it everywhere and both validators reject it
from deterministic data.
"""

from __future__ import annotations

import math
from typing import Any

#: Field names that are *timing-scoped*: machine-, scheduler- or
#: execution-layout-dependent values that must never enter a
#: deterministic section, digest or parity-compared ledger.  The core
#: seven are the documented contract (see ``DESIGN.md``); the rest are
#: this codebase's aliases for them (``seconds``/``elapsed_s``,
#: ``warning``/``warnings``, ``jobs``/``workers``).
TIMING_SCOPED_FIELDS: tuple[str, ...] = (
    "attempts",
    "available_cpus",
    "elapsed_s",
    "faults",
    "max_rss_kb",
    "warnings",
    "workers",
    # aliases used by the sweep runner and benchmarks
    "jobs",
    "seconds",
    "wall_seconds",
    "warning",
)

#: Frozen-set view for membership tests on hot validation paths.
TIMING_SCOPED_FIELD_SET: frozenset[str] = frozenset(TIMING_SCOPED_FIELDS)


def is_deterministic_int(value: Any) -> bool:
    """Whether ``value`` is a genuine integer (bools and floats rejected).

    Deterministic series are integer-valued by construction (message,
    word and round counts; set sizes).  A float sneaking in is a
    determinism hazard — float formatting and NaN compare-unequal
    semantics break canonical-JSON digests — so validators reject
    non-integers outright instead of coercing.
    """
    return isinstance(value, int) and not isinstance(value, bool)


def reject_non_integer_series(
    name: str, values: Any, constraint: str
) -> None:
    """Raise ``ValueError`` unless ``values`` is a list of genuine ints.

    The error message leads with ``constraint`` (a stable, documented
    constraint name such as ``integer-series``) so callers and CI logs
    can grep for which contract clause failed.  NaN can only arrive as a
    float and is therefore rejected by the integer check, but it is
    called out explicitly in the message when present.
    """
    if not isinstance(values, list):
        raise ValueError(
            f"{constraint}: series {name!r} must be a list, "
            f"got {type(values).__name__}"
        )
    for index, value in enumerate(values):
        if not is_deterministic_int(value):
            detail = (
                "NaN"
                if isinstance(value, float) and math.isnan(value)
                else repr(value)
            )
            raise ValueError(
                f"{constraint}: series {name!r}[{index}] must be an "
                f"integer, got {detail} ({type(value).__name__})"
            )


def find_timing_scoped_keys(payload: Any, path: str = "") -> list[str]:
    """JSON-paths of timing-scoped keys anywhere inside ``payload``.

    Walks dicts and lists recursively; returns dotted paths (e.g.
    ``phases[2].elapsed_s``) for every key in
    :data:`TIMING_SCOPED_FIELDS`.  Used by the validators' ``timing-scope``
    constraint to refuse deterministic sections contaminated with
    machine-dependent fields — the exact leak class the sweep runner's
    ``include_timing`` split exists to prevent.
    """
    found: list[str] = []
    if isinstance(payload, dict):
        for key, value in payload.items():
            where = f"{path}.{key}" if path else str(key)
            if isinstance(key, str) and key in TIMING_SCOPED_FIELD_SET:
                found.append(where)
            found.extend(find_timing_scoped_keys(value, where))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            found.extend(
                find_timing_scoped_keys(value, f"{path}[{index}]")
            )
    return found
