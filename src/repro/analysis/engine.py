"""The analyzer engine: file discovery, classification, rule dispatch.

Classification decides which modules the DET family applies to: a module
is *deterministic* when it lives under ``repro/`` and outside the
declared timing planes (``repro/trace`` — wall-clock is that plane's
entire job).  A file can override its classification with the
``# repro: deterministic-module`` / ``# repro: timing-module`` markers;
tests and benchmarks are non-deterministic by default, so synthetic
fixtures opt in with the marker.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

# Import the rule modules for their registration side effects.
from repro.analysis import rules_det  # noqa: F401
from repro.analysis import rules_msg  # noqa: F401
from repro.analysis import rules_par  # noqa: F401
from repro.analysis import rules_scope  # noqa: F401
from repro.analysis.findings import Finding, Suppression
from repro.analysis.pragmas import scan_pragmas
from repro.analysis.registry import ModuleInfo, run_rules

#: ``repro/``-relative prefixes whose whole job is wall-clock/timing
#: observation; DET rules are off there by default.
TIMING_PLANE_PREFIXES: tuple[str, ...] = ("repro/trace",)

ANALYSIS_SCHEMA = "repro.analysis-report/1"


def module_relpath(path: Path) -> str:
    """Posix path used for classification, anchored at ``repro/``.

    ``src/repro/mpc/runtime.py`` -> ``repro/mpc/runtime.py``;
    paths without a ``repro`` component are returned as given.
    """
    parts = path.as_posix().split("/")
    if "repro" in parts:
        index = parts.index("repro")
        return "/".join(parts[index:])
    return path.as_posix()


def classify_deterministic(relpath: str, forced: bool | None) -> bool:
    if forced is not None:
        return forced
    if not relpath.startswith("repro/"):
        return False
    return not any(
        relpath == prefix or relpath.startswith(prefix + "/")
        for prefix in TIMING_PLANE_PREFIXES
    )


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced, before baseline filtering."""

    files: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": ANALYSIS_SCHEMA,
            "files": list(self.files),
            "findings": [f.to_json() for f in self.findings],
            "suppressions": [s.to_json() for s in self.suppressions],
        }


def analyze_source(path: str, source: str) -> AnalysisResult:
    """Analyze one module's source text."""
    result = AnalysisResult(files=[path])
    pragmas = scan_pragmas(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        result.findings.append(
            Finding(
                path=path,
                line=line,
                col=0,
                rule="SYN001",
                message=f"file could not be parsed: {exc.msg}"
                if isinstance(exc, SyntaxError)
                else f"file could not be parsed: {exc}",
            )
        )
        return result

    relpath = module_relpath(Path(path))
    module = ModuleInfo(
        path=path,
        source=source,
        tree=tree,
        pragmas=pragmas,
        deterministic=classify_deterministic(
            relpath, pragmas.classification()
        ),
    )
    raw = run_rules(module) + list(pragmas.findings)
    for finding in sorted(raw):
        reason = pragmas.suppression_for(finding)
        if reason is not None and finding.rule != "PRG001":
            result.suppressions.append(Suppression(finding, reason))
        else:
            result.findings.append(finding)
    return result


def collect_files(targets: list[str]) -> list[Path]:
    """Expand file/dir targets to a sorted list of ``.py`` files.

    Raises ``FileNotFoundError`` for a target that does not exist — bad
    arguments must exit 2, not silently analyze nothing.
    """
    files: set[Path] = set()
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
    return sorted(files)


def analyze_paths(targets: list[str]) -> AnalysisResult:
    """Analyze every ``.py`` file under ``targets``."""
    result = AnalysisResult()
    for path in collect_files(targets):
        source = path.read_text(encoding="utf-8")
        one = analyze_source(path.as_posix(), source)
        result.files.extend(one.files)
        result.findings.extend(one.findings)
        result.suppressions.extend(one.suppressions)
    result.findings.sort()
    return result
