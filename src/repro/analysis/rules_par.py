"""PAR rules: fork/pipe boundary safety for the shard-worker plane.

The parallel MPC executor (``repro.mpc.parallel``) forks shard workers
and talks to them over pipes with a typed transport: JSON-safe task and
result tuples, exceptions rebuilt from ``describe_error`` descriptors.
These rules pin the boundary conditions that make that sound:

* ``PAR001`` — unpicklable objects (lambdas, generator expressions)
  handed to a pipe ``send()``;
* ``PAR002`` — shard-side code writing module-level state (post-fork
  writes never reach the parent, so such state silently diverges);
* ``PAR003`` — a caught exception object sent through a pipe raw
  instead of as a ``describe_error`` descriptor.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import terminal_name, walk_with_symbol
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, rule

#: Receiver names treated as pipe/connection endpoints.
_PIPE_NAMES = frozenset({"conn", "pipe", "connection"})
_PIPE_SUFFIXES = ("_conn", "_pipe")


def _finding(
    module: ModuleInfo,
    node: ast.AST,
    rule_id: str,
    message: str,
    symbol: str | None,
) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
        symbol=symbol,
    )


def _is_pipe_receiver(node: ast.AST) -> bool:
    name = terminal_name(node)
    if name is None:
        return False
    return name in _PIPE_NAMES or name.endswith(_PIPE_SUFFIXES)


def _pipe_sends(tree: ast.Module) -> Iterator[tuple[ast.Call, str | None]]:
    for node, symbol in walk_with_symbol(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and _is_pipe_receiver(node.func.value)
        ):
            yield node, symbol


@rule(
    "PAR001",
    "unpicklable object (lambda/generator) sent through a worker pipe",
)
def check_pipe_unpicklable(module: ModuleInfo) -> Iterator[Finding]:
    for call, symbol in _pipe_sends(module.tree):
        for arg in call.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    yield _finding(
                        module,
                        sub,
                        "PAR001",
                        "lambda sent through a worker pipe cannot be "
                        "pickled; send data and rebuild callables on the "
                        "shard side",
                        symbol,
                    )
                elif isinstance(sub, ast.GeneratorExp):
                    yield _finding(
                        module,
                        sub,
                        "PAR001",
                        "generator sent through a worker pipe cannot be "
                        "pickled; materialize it to a list first",
                        symbol,
                    )


@rule(
    "PAR002",
    "shard-side code writes module-level state lost at the fork boundary",
)
def check_fork_global_write(module: ModuleInfo) -> Iterator[Finding]:
    module_globals: set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            module_globals.add(stmt.target.id)

    def shard_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Shard"):
                yield node

    def shard_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.endswith("_shard_main"):
                yield node

    def check_scope(
        scope: ast.AST, symbol: str
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield _finding(
                        module,
                        node,
                        "PAR002",
                        f"shard-side write to module global '{name}'; "
                        "post-fork writes never reach the parent — return "
                        "state through the pipe result instead",
                        symbol,
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in module_globals
                        and target.id.isupper()
                    ):
                        yield _finding(
                            module,
                            node,
                            "PAR002",
                            f"shard-side rebind of module-level "
                            f"'{target.id}'; post-fork writes never reach "
                            "the parent — return state through the pipe "
                            "result instead",
                            symbol,
                        )

    for cls in shard_classes(module.tree):
        yield from check_scope(cls, cls.name)
    for fn in shard_functions(module.tree):
        yield from check_scope(fn, fn.name)


@rule(
    "PAR003",
    "caught exception object sent raw through a worker pipe",
)
def check_raw_exception_transport(module: ModuleInfo) -> Iterator[Finding]:
    for node, symbol in walk_with_symbol(module.tree):
        if not isinstance(node, ast.ExceptHandler) or node.name is None:
            continue
        caught = node.name
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "send"
                and _is_pipe_receiver(sub.func.value)
            ):
                for arg_node in sub.args:
                    names = {
                        n.id
                        for n in ast.walk(arg_node)
                        if isinstance(n, ast.Name)
                    }
                    if caught in names and not _is_described(arg_node, caught):
                        yield _finding(
                            module,
                            sub,
                            "PAR003",
                            f"exception '{caught}' crosses a worker pipe "
                            "raw; use describe_error/rebuild_exception "
                            "typed transport",
                            symbol,
                        )


def _is_described(arg: ast.AST, caught: str) -> bool:
    """Whether the caught exception travels as a typed descriptor."""
    del caught
    for node in ast.walk(arg):
        if isinstance(node, ast.Call):
            func_name = terminal_name(node.func)
            if func_name in ("describe_error", "describe_exception"):
                return True
    return False
