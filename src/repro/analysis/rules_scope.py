"""SCOPE rules: timing-scoped fields must not enter deterministic payloads.

The field list is :data:`repro.contract.TIMING_SCOPED_FIELDS` — the same
list ``validate_metrics`` and ``validate_trace`` enforce at runtime.
Targets are *payload builders*: any function with an ``include_timing``
parameter, or named ``to_json`` / ``deterministic_payload`` /
``deterministic_json``.  Within a builder every statement is classified
as guarded (only reachable when ``include_timing`` is truthy) or
deterministic, by tracking ``if include_timing:`` / ``if not
include_timing:`` branches.

* ``SCOPE001`` — a timing-scoped *key* written in a deterministic
  section (``data["elapsed_s"] = ...`` outside the guard);
* ``SCOPE002`` — a timing-scoped *value* flowing under a neutral key in
  a deterministic section (``data["meta"] = self.elapsed_s``);
* ``SCOPE003`` — an opaque payload passed through to the deterministic
  section with no evidence of timing-key sanitization.  This is the
  exact PR 8 bug class: worker-count-dependent ``faults`` reports rode a
  task payload into the sweep digest, and nothing at the ``to_json``
  seam stripped them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import names_in, string_constants_in
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, rule
from repro.contract import TIMING_SCOPED_FIELD_SET

_BUILDER_NAMES = frozenset(
    {"to_json", "deterministic_payload", "deterministic_json"}
)
_GUARD_PARAM = "include_timing"


def _finding(
    module: ModuleInfo,
    node: ast.AST,
    rule_id: str,
    message: str,
    symbol: str,
) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
        symbol=symbol,
    )


def _is_builder(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if fn.name in _BUILDER_NAMES:
        return True
    args = fn.args
    all_args = (
        args.posonlyargs + args.args + args.kwonlyargs
    )
    return any(a.arg == _GUARD_PARAM for a in all_args)


def _iter_builders(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbol = ".".join(stack + (node.name,))
            if _is_builder(node):
                yield node, symbol
            stack = stack + (node.name,)
        elif isinstance(node, ast.ClassDef):
            stack = stack + (node.name,)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, stack)

    yield from visit(tree, ())


def _guard_polarity(test: ast.expr) -> bool | None:
    """How an ``if`` test relates to ``include_timing``.

    ``True``  — body only runs when timing output is requested;
    ``False`` — body is the deterministic branch (``not include_timing``);
    ``None``  — the guard does not mention ``include_timing`` at all.
    """
    if _GUARD_PARAM not in names_in(test):
        return None
    for node in ast.walk(test):
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            if _GUARD_PARAM in names_in(node.operand):
                return False
    return True


class _KeyWrite:
    """One ``key: value`` landing in a payload-ish container."""

    def __init__(self, node: ast.AST, key: str, value: ast.expr) -> None:
        self.node = node
        self.key = key
        self.value = value


def _key_writes(node: ast.AST) -> Iterator[_KeyWrite]:
    """Key/value pairs written by one statement-level node."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Dict):
            for key, value in zip(sub.keys, sub.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    yield _KeyWrite(key, key.value, value)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    yield _KeyWrite(target, target.slice.value, sub.value)
        elif isinstance(sub, ast.Call):
            for keyword in sub.keywords:
                if keyword.arg is not None and isinstance(
                    sub.func, ast.Name
                ) and sub.func.id == "dict":
                    yield _KeyWrite(keyword, keyword.arg, keyword.value)
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "setdefault"
                and len(sub.args) >= 1
                and isinstance(sub.args[0], ast.Constant)
                and isinstance(sub.args[0].value, str)
            ):
                value = (
                    sub.args[1] if len(sub.args) > 1 else ast.Constant(None)
                )
                yield _KeyWrite(sub, sub.args[0].value, value)


def _timing_names_in_value(value: ast.expr) -> set[str]:
    """Timing-scoped identifiers referenced by a value expression."""
    found: set[str] = set()
    for node in ast.walk(value):
        if isinstance(node, ast.Attribute):
            if node.attr in TIMING_SCOPED_FIELD_SET:
                found.add(node.attr)
        elif isinstance(node, ast.Name):
            if node.id in TIMING_SCOPED_FIELD_SET:
                found.add(node.id)
    return found


def _has_sanitizer(fn: ast.AST) -> bool:
    """Whether ``fn`` contains a deterministic-branch timing-key strip.

    The recognized shape is an ``if`` whose test mentions
    ``not include_timing`` and whose test-or-body references at least one
    timing-scoped field name as a string constant — e.g.::

        if not include_timing and payload is not None and "faults" in payload:
            payload = {k: v for k, v in payload.items() if k != "faults"}
    """
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        if _guard_polarity(node.test) is not False:
            continue
        mentioned = string_constants_in(node.test)
        for stmt in node.body:
            mentioned |= string_constants_in(stmt)
        if mentioned & TIMING_SCOPED_FIELD_SET:
            return True
    return False


_COMPOUND_STMTS = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def _walk_builder(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield each leaf statement with its include_timing-guarded flag.

    Compound statements are descended into (so a write inside a loop
    under ``if include_timing:`` is correctly guarded) and never yielded
    whole — only leaf statements carry key writes to examine.  Nested
    function/class definitions are skipped; they are analyzed as their
    own builders if they qualify.
    """

    def visit(body: list[ast.stmt], guarded: bool) -> Iterator:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.If):
                polarity = _guard_polarity(stmt.test)
                if polarity is True:
                    yield from visit(stmt.body, True)
                    yield from visit(stmt.orelse, guarded)
                elif polarity is False:
                    yield from visit(stmt.body, guarded)
                    yield from visit(stmt.orelse, True)
                else:
                    yield from visit(stmt.body, guarded)
                    yield from visit(stmt.orelse, guarded)
                continue
            if isinstance(stmt, _COMPOUND_STMTS):
                yield from visit(getattr(stmt, "body", []) or [], guarded)
                yield from visit(getattr(stmt, "orelse", []) or [], guarded)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from visit(handler.body, guarded)
                yield from visit(
                    getattr(stmt, "finalbody", []) or [], guarded
                )
                continue
            yield stmt, guarded

    yield from visit(fn.body, False)


@rule(
    "SCOPE001",
    "timing-scoped key written in a deterministic payload section",
)
def check_timing_key(module: ModuleInfo) -> Iterator[Finding]:
    for fn, symbol in _iter_builders(module.tree):
        for stmt, guarded in _walk_builder(fn):
            if guarded:
                continue
            for write in _key_writes(stmt):
                if write.key in TIMING_SCOPED_FIELD_SET:
                    yield _finding(
                        module,
                        write.node,
                        "SCOPE001",
                        f"timing-scoped key '{write.key}' written outside "
                        "the include_timing guard of a payload builder",
                        symbol,
                    )


@rule(
    "SCOPE002",
    "timing-scoped value flowing into a deterministic payload section",
)
def check_timing_value(module: ModuleInfo) -> Iterator[Finding]:
    for fn, symbol in _iter_builders(module.tree):
        for stmt, guarded in _walk_builder(fn):
            if guarded:
                continue
            for write in _key_writes(stmt):
                if write.key in TIMING_SCOPED_FIELD_SET:
                    continue  # SCOPE001's finding; don't double-report
                for name in sorted(_timing_names_in_value(write.value)):
                    yield _finding(
                        module,
                        write.node,
                        "SCOPE002",
                        f"timing-scoped value '{name}' flows under key "
                        f"'{write.key}' outside the include_timing guard",
                        symbol,
                    )


@rule(
    "SCOPE003",
    "opaque payload passthrough without timing-key sanitization",
)
def check_unsanitized_passthrough(module: ModuleInfo) -> Iterator[Finding]:
    for fn, symbol in _iter_builders(module.tree):
        args = fn.args
        all_args = args.posonlyargs + args.args + args.kwonlyargs
        if not any(a.arg == _GUARD_PARAM for a in all_args):
            continue
        sanitized = _has_sanitizer(fn)
        for stmt, guarded in _walk_builder(fn):
            if guarded:
                continue
            for write in _key_writes(stmt):
                value = write.value
                is_opaque = (
                    isinstance(value, ast.Name)
                    and value.id == "payload"
                ) or (
                    isinstance(value, ast.Attribute)
                    and value.attr == "payload"
                )
                if is_opaque and not sanitized:
                    yield _finding(
                        module,
                        write.node,
                        "SCOPE003",
                        f"opaque payload passes through under key "
                        f"'{write.key}' with no deterministic-branch strip "
                        "of timing-scoped fields (the PR 8 faults-in-digest "
                        "bug class)",
                        symbol,
                    )
