"""DET rules: nondeterminism sources in deterministic modules.

These rules only run on modules classified deterministic (``repro/*``
outside the declared timing planes, or files marked
``# repro: deterministic-module``).  Each one targets a nondeterminism
source that has bitten real parity guarantees in this class of codebase:

* ``DET001`` — unseeded randomness (the process-global ``random`` module,
  ``os.urandom``, random UUIDs, ``secrets``);
* ``DET002`` — wall-clock reads outside timing-scoped helpers;
* ``DET003`` — order-sensitive iteration over set-typed values;
* ``DET004`` — ``id()``/``hash()``-based sort keys (hash randomization
  and allocation order make these run-dependent).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import (
    call_func_name,
    dotted_name,
    terminal_name,
    walk_with_symbol,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, rule

_GLOBAL_RANDOM_OK = frozenset({"Random", "SystemRandom"})
_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
        "sleep",
    }
)
_DATETIME_CALLS = frozenset(
    {
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)
#: Consumers for which iteration order over a set cannot matter.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {
        "sorted",
        "sum",
        "len",
        "min",
        "max",
        "any",
        "all",
        "set",
        "frozenset",
        "Counter",
    }
)
_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _finding(
    module: ModuleInfo,
    node: ast.AST,
    rule_id: str,
    message: str,
    symbol: str | None,
) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
        symbol=symbol,
    )


@rule(
    "DET001",
    "unseeded randomness (global random module, os.urandom, uuid4, secrets)",
    deterministic_only=True,
)
def check_unseeded_random(module: ModuleInfo) -> Iterator[Finding]:
    for node, symbol in walk_with_symbol(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        if dotted == "random.Random" and not node.args and not node.keywords:
            yield _finding(
                module,
                node,
                "DET001",
                "random.Random() without a seed; derive the seed from the "
                "workload cell (see derive_seed)",
                symbol,
            )
        elif (
            dotted.startswith("random.")
            and dotted.split(".", 1)[1] not in _GLOBAL_RANDOM_OK
        ):
            yield _finding(
                module,
                node,
                "DET001",
                f"'{dotted}' uses the process-global RNG; use a seeded "
                "random.Random instance instead",
                symbol,
            )
        elif dotted == "os.urandom" or dotted.startswith("secrets."):
            yield _finding(
                module,
                node,
                "DET001",
                f"'{dotted}' is entropy from the OS; deterministic modules "
                "must derive randomness from the cell seed",
                symbol,
            )
        elif dotted in ("uuid.uuid1", "uuid.uuid4"):
            yield _finding(
                module,
                node,
                "DET001",
                f"'{dotted}' generates run-dependent identifiers; derive "
                "ids from the workload cell instead",
                symbol,
            )


@rule(
    "DET002",
    "wall-clock access in a deterministic module",
    deterministic_only=True,
)
def check_wall_clock(module: ModuleInfo) -> Iterator[Finding]:
    for node, symbol in walk_with_symbol(module.tree):
        dotted = dotted_name(node) if isinstance(node, ast.Attribute) else None
        if dotted is None:
            continue
        if dotted.startswith("time.") and dotted[5:] in _CLOCK_ATTRS:
            yield _finding(
                module,
                node,
                "DET002",
                f"wall-clock '{dotted}' in a deterministic module; move it "
                "to a timing-scoped helper or pragma with a reason",
                symbol,
            )
        elif dotted in _DATETIME_CALLS:
            yield _finding(
                module,
                node,
                "DET002",
                f"wall-clock '{dotted}' in a deterministic module; move it "
                "to a timing-scoped helper or pragma with a reason",
                symbol,
            )


def _iter_scope_nodes(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes lexically in this scope.

    Nested function/class definitions are *yielded* (so callers can
    recurse into them with a child scope) but not entered — their bodies
    belong to a different scope.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _DEFS):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _SetTypes:
    """Set-typed name environment for one lexical scope chain."""

    def __init__(self, parent: "_SetTypes | None" = None) -> None:
        self.parent = parent
        self.names: set[str] = set()
        self.demoted: set[str] = set()
        #: ``self.<attr>`` attributes known set-typed (class scope only).
        self.self_attrs: set[str] = set()

    def name_is_set(self, name: str) -> bool:
        if name in self.demoted:
            return False
        if name in self.names:
            return True
        return self.parent.name_is_set(name) if self.parent else False

    def self_attr_is_set(self, attr: str) -> bool:
        if attr in self.self_attrs:
            return True
        return self.parent.self_attr_is_set(attr) if self.parent else False


def _is_set_annotation(annotation: ast.AST) -> bool:
    """Whether the *outermost* annotated type is a set.

    ``dict[Node, set[Node]]`` is not set-typed — only the top-level
    constructor counts (through ``Optional``/``|`` unions).
    """
    if isinstance(annotation, ast.Subscript):
        base = terminal_name(annotation.value)
        if base in _SET_ANNOTATION_NAMES:
            return True
        if base == "Optional":
            return _is_set_annotation(annotation.slice)
        return False
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        return terminal_name(annotation) in _SET_ANNOTATION_NAMES
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        return _is_set_annotation(annotation.left) or _is_set_annotation(
            annotation.right
        )
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        text = annotation.value.strip()
        return any(
            text == tok or text.startswith(tok + "[")
            for tok in _SET_ANNOTATION_NAMES
        )
    return False


def _is_set_expr(node: ast.AST, scope: _SetTypes) -> bool:
    """Conservatively decide whether ``node`` evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _value_is_set(func.value, scope)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _value_is_set(node.left, scope) or _value_is_set(
            node.right, scope
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, scope) and _is_set_expr(
            node.orelse, scope
        )
    return False


def _value_is_set(node: ast.AST, scope: _SetTypes) -> bool:
    """Whether an expression is known set-typed (literal, name or attr)."""
    if isinstance(node, ast.Name):
        return scope.name_is_set(node.id)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return scope.self_attr_is_set(node.attr)
    return _is_set_expr(node, scope)


def _describe(node: ast.AST) -> str:
    dotted = dotted_name(node)
    if dotted is not None:
        return f"'{dotted}'"
    return "a set expression"


def _collect_scope_names(body: list[ast.stmt], scope: _SetTypes) -> None:
    """Populate ``scope`` from assignments lexically in this scope.

    Runs to a fixpoint so set-ness propagates through name-to-name
    assignments (``keep = set(x); candidates = keep``).  Names that are
    re-bound to a non-set expression are demoted — better to miss a
    finding than to flag ``x = sorted(x)`` downstream.
    """
    assigns: list[tuple[str, ast.expr]] = []
    seed = set(scope.names)
    for node in _iter_scope_nodes(body):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.append((target.id, node.value))
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _is_set_annotation(node.annotation):
                seed.add(node.target.id)
    scope.names = set(seed)
    for _ in range(10):
        promoted: set[str] = set()
        demoted: set[str] = set()
        for name, value in assigns:
            if _value_is_set(value, scope):
                promoted.add(name)
            else:
                demoted.add(name)
        names = (seed | promoted) - demoted
        if names == scope.names and demoted == scope.demoted:
            break
        scope.names = names
        scope.demoted = demoted


def _collect_class_self_attrs(cls: ast.ClassDef, scope: _SetTypes) -> None:
    demoted: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            is_set = _is_set_expr(node.value, scope)
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    (scope.self_attrs if is_set else demoted).add(target.attr)
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and _is_set_annotation(node.annotation)
            ):
                scope.self_attrs.add(target.attr)
    scope.self_attrs -= demoted


@rule(
    "DET003",
    "order-sensitive iteration over a set-typed value",
    deterministic_only=True,
)
def check_set_iteration(module: ModuleInfo) -> Iterator[Finding]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(module.tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    findings: list[Finding] = []

    def consumed_order_insensitively(node: ast.AST) -> bool:
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            return call_func_name(parent) in _ORDER_INSENSITIVE_CALLS
        return False

    def flag(
        node: ast.AST, expr: ast.AST, symbol: str | None, how: str
    ) -> None:
        findings.append(
            _finding(
                module,
                node,
                "DET003",
                f"{how} {_describe(expr)} is iteration-order-dependent; "
                "wrap it in sorted() or pragma with a reason it is "
                "order-insensitive",
                symbol,
            )
        )

    def check_node(
        node: ast.AST, scope: _SetTypes, symbol: str | None
    ) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _value_is_set(node.iter, scope):
                flag(node, node.iter, symbol, "for-loop over")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if consumed_order_insensitively(node):
                return
            for gen in node.generators:
                if _value_is_set(gen.iter, scope):
                    flag(node, gen.iter, symbol, "comprehension over")
        elif isinstance(node, ast.Call):
            name = call_func_name(node)
            if (
                name in ("list", "tuple", "iter")
                and len(node.args) == 1
                and _value_is_set(node.args[0], scope)
            ):
                flag(
                    node,
                    node.args[0],
                    symbol,
                    f"{name}() materializes order of",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and len(node.args) == 1
                and _value_is_set(node.args[0], scope)
            ):
                flag(node, node.args[0], symbol, "join() serializes order of")
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and not node.args
                and _value_is_set(node.func.value, scope)
            ):
                flag(
                    node,
                    node.func.value,
                    symbol,
                    "pop() takes an arbitrary element of",
                )

    def visit_scope(
        body: list[ast.stmt], scope: _SetTypes, symbol: str | None
    ) -> None:
        _collect_scope_names(body, scope)
        for node in _iter_scope_nodes(body):
            if isinstance(node, ast.ClassDef):
                cls_scope = _SetTypes(scope)
                _collect_class_self_attrs(node, cls_scope)
                cls_symbol = f"{symbol}.{node.name}" if symbol else node.name
                visit_scope(node.body, cls_scope, cls_symbol)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_scope = _SetTypes(scope)
                fn_args = node.args
                for arg in (
                    fn_args.posonlyargs + fn_args.args + fn_args.kwonlyargs
                ):
                    if arg.annotation is not None and _is_set_annotation(
                        arg.annotation
                    ):
                        fn_scope.names.add(arg.arg)
                fn_symbol = f"{symbol}.{node.name}" if symbol else node.name
                visit_scope(node.body, fn_scope, fn_symbol)
            else:
                check_node(node, scope, symbol)

    visit_scope(list(module.tree.body), _SetTypes(), None)
    findings.sort()
    yield from findings


@rule(
    "DET004",
    "id()/hash()-based sort key",
    deterministic_only=True,
)
def check_hash_order_sort(module: ModuleInfo) -> Iterator[Finding]:
    for node, symbol in walk_with_symbol(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_func_name(node)
        is_sort = name == "sorted" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not is_sort:
            continue
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            key = keyword.value
            offender: str | None = None
            if isinstance(key, ast.Name) and key.id in ("id", "hash"):
                offender = key.id
            elif isinstance(key, ast.Lambda):
                for sub in ast.walk(key.body):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("id", "hash")
                    ):
                        offender = sub.func.id
                        break
            if offender is not None:
                yield _finding(
                    module,
                    node,
                    "DET004",
                    f"sort key uses {offender}(), which depends on "
                    "allocation order / hash randomization; sort by a "
                    "stable label instead",
                    symbol,
                )
