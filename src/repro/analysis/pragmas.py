"""Inline pragma suppressions and module classification markers.

Grammar (inside any ``#`` comment)::

    # repro: allow[RULE]  reason text              one line (same or above)
    # repro: allow[RULE1,RULE2] -- reason text     several rules at once
    # repro: allow-file[RULE] reason text          whole module
    # repro: deterministic-module                  force DET classification
    # repro: timing-module                         opt out of DET rules

A suppression *must* carry a non-empty reason — the pragma is the audit
trail for why a contract exception is sound — and an empty reason is
itself a finding (``PRG001``), so silencing the analyzer always costs one
written sentence.  A line pragma suppresses matching findings on its own
line and, when the pragma stands on a comment-only line, on the next code
line below it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow-file|allow)"
    r"\[(?P<rules>[^\]]*)\]\s*(?:--\s*)?(?P<reason>.*?)\s*$"
)
_MARKER_RE = re.compile(
    r"#\s*repro:\s*(?P<marker>deterministic-module|timing-module)\b"
)


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    file_level: bool = False
    #: Whether the pragma had the comment line to itself (then it also
    #: covers the next code line, like a decorator).
    own_line: bool = False


@dataclass
class PragmaSet:
    """All pragmas and markers of one module, plus their own findings."""

    pragmas: list[Pragma] = field(default_factory=list)
    markers: set[str] = field(default_factory=set)
    #: Malformed-pragma findings (``PRG001``) discovered while parsing.
    findings: list[Finding] = field(default_factory=list)

    def classification(self) -> bool | None:
        """Forced deterministic classification, or ``None`` if unmarked."""
        if "timing-module" in self.markers:
            return False
        if "deterministic-module" in self.markers:
            return True
        return None

    def suppression_for(self, finding: Finding) -> str | None:
        """The reason of a pragma covering ``finding``, or ``None``.

        File-level pragmas cover the whole module; line pragmas cover
        their own line and — when the comment stands alone — the next
        line (so a pragma can sit above a long statement).
        """
        for pragma in self.pragmas:
            if finding.rule not in pragma.rules:
                continue
            if pragma.file_level:
                return pragma.reason
            if finding.line == pragma.line:
                return pragma.reason
            if pragma.own_line and finding.line > pragma.line:
                # Covers the next *code* line: anything on the lines
                # between is necessarily more comments, so a small
                # forward window is exact enough in practice — the
                # common shape is pragma directly above the statement.
                if finding.line - pragma.line <= 2:
                    return pragma.reason
        return None


def scan_pragmas(path: str, source: str) -> PragmaSet:
    """Parse every ``# repro:`` comment of ``source``.

    Tokenization errors are ignored here — the caller reports the module
    as unparseable through the AST pass, which gives a better message.
    """
    result = PragmaSet()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return result
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        line = token.start[0]
        marker = _MARKER_RE.search(comment)
        if marker:
            result.markers.add(marker.group("marker"))
            continue
        match = _PRAGMA_RE.search(comment)
        if match is None:
            if re.search(r"#\s*repro:\s*allow", comment):
                result.findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=token.start[1],
                        rule="PRG001",
                        message=(
                            "malformed pragma: expected "
                            "'# repro: allow[RULE] reason'"
                        ),
                    )
                )
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = match.group("reason").strip()
        if not rules or not reason:
            result.findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=token.start[1],
                    rule="PRG001",
                    message=(
                        "pragma must name at least one rule and state a "
                        "reason: '# repro: allow[RULE] reason'"
                    ),
                )
            )
            continue
        own_line = source.splitlines()[line - 1].lstrip().startswith("#")
        result.pragmas.append(
            Pragma(
                line=line,
                rules=rules,
                reason=reason,
                file_level=match.group("kind") == "allow-file",
                own_line=own_line,
            )
        )
    return result
