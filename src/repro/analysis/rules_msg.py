"""MSG rules: CONGEST nodes communicate only through the metered plane.

The CONGEST simulator's accounting (messages, words, per-round ledgers)
is only honest if every byte between nodes goes through the metered
``send`` / ``send_many`` / ``broadcast`` API.  PR 6 fixed a variant of
this (unmetered final-round outboxes); these rules make the whole class
a lint error for ``NodeAlgorithm`` subclasses:

* ``MSG001`` — a node algorithm reaching into network/scheduler
  internals (inboxes, mailboxes, other nodes' algorithm objects);
* ``MSG002`` — a node algorithm invoking another node's round handlers
  directly, bypassing message transport entirely.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import terminal_name
from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleInfo, rule

_ALGORITHM_BASES = frozenset({"NodeAlgorithm"})
#: Attribute names that are network/scheduler internals from a node's
#: point of view.  Touching them from algorithm code bypasses metering.
_INTERNAL_ATTRS = frozenset(
    {
        "_inboxes",
        "_outboxes",
        "_mailboxes",
        "_mailbox",
        "_algorithms",
        "_engine",
        "_scheduler",
        "_network",
        "_views",
        "_node_state",
    }
)
_HANDLER_NAMES = frozenset({"on_round", "on_start"})


def _finding(
    module: ModuleInfo,
    node: ast.AST,
    rule_id: str,
    message: str,
    symbol: str,
) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
        symbol=symbol,
    )


def _algorithm_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes deriving (transitively, within this module) from
    ``NodeAlgorithm``."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    algorithmic: set[str] = set(_ALGORITHM_BASES)
    # Fixpoint over in-module inheritance chains.
    changed = True
    selected: list[ast.ClassDef] = []
    while changed:
        changed = False
        for cls in classes:
            if cls.name in algorithmic:
                continue
            for base in cls.bases:
                base_name = terminal_name(base)
                if base_name in algorithmic:
                    algorithmic.add(cls.name)
                    selected.append(cls)
                    changed = True
                    break
    return selected


@rule(
    "MSG001",
    "node algorithm touches network internals instead of the message API",
)
def check_network_internal_access(module: ModuleInfo) -> Iterator[Finding]:
    for cls in _algorithm_classes(module.tree):
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _INTERNAL_ATTRS
            ):
                yield _finding(
                    module,
                    node,
                    "MSG001",
                    f"node algorithm accesses network internal "
                    f"'{node.attr}'; nodes may only communicate through "
                    "metered send/send_many/broadcast",
                    cls.name,
                )


@rule(
    "MSG002",
    "node algorithm calls another node's round handler directly",
)
def check_direct_handler_call(module: ModuleInfo) -> Iterator[Finding]:
    for cls in _algorithm_classes(module.tree):
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _HANDLER_NAMES
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                continue
            if (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
            ):
                continue
            yield _finding(
                module,
                node,
                "MSG002",
                f"node algorithm invokes '{node.func.attr}' on another "
                "object, bypassing the metered message plane; communicate "
                "via send/send_many/broadcast",
                cls.name,
            )
