"""Determinism-contract static analyzer.

An AST-based lint over this repository's own invariants: DET
(nondeterminism sources in deterministic modules), SCOPE (timing-scoped
fields leaking into deterministic payloads — the PR 6/8 bug class), PAR
(fork/pipe boundary safety) and MSG (metered CONGEST message plane).
Run it with ``python -m repro.analysis src`` or import
:func:`repro.analysis.engine.analyze_paths`.
"""

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    AnalysisResult,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import Finding, Suppression
from repro.analysis.registry import RULES, all_rule_ids

__all__ = [
    "AnalysisResult",
    "Finding",
    "RULES",
    "Suppression",
    "all_rule_ids",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]
