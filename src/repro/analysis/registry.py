"""Rule registry: the analyzer's pluggable catalog of contract checks.

A *rule* is a function ``(module: ModuleInfo) -> Iterable[Finding]``
registered under a stable id (``DET001``, ``SCOPE002``, ...).  Ids are
API: pragmas, the baseline file and CI reports all reference them, so a
rule may be retired but its id never reused for a different check.

Rule families (see ``DESIGN.md`` for the full catalog):

* ``DET`` — nondeterminism sources in deterministic modules;
* ``SCOPE`` — timing-scoped fields leaking into deterministic payloads;
* ``PAR`` — fork/pipe boundary safety of the shard-worker plane;
* ``MSG`` — CONGEST node algorithms bypassing the metered message plane;
* ``PRG`` — pragma hygiene (emitted by the pragma parser itself);
* ``SYN`` — files the analyzer cannot parse at all.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaSet


@dataclass
class ModuleInfo:
    """Everything a rule may look at for one source file."""

    #: Path as reported in findings (normalized, repo-relative when run
    #: from the repo root).
    path: str
    source: str
    tree: ast.Module
    pragmas: PragmaSet
    #: Whether DET rules apply here — ``True`` for ``repro/*`` modules
    #: outside the declared timing planes, overridable per file with the
    #: ``# repro: deterministic-module`` / ``timing-module`` markers.
    deterministic: bool


@dataclass(frozen=True)
class Rule:
    id: str
    summary: str
    check: Callable[[ModuleInfo], Iterable[Finding]]
    #: Rules that only make sense where the determinism contract holds
    #: (the DET family); others run on every analyzed file.
    deterministic_only: bool = False

    @property
    def family(self) -> str:
        return "".join(c for c in self.id if c.isalpha())


#: The live registry, id -> Rule.  Populated by the ``rules_*`` modules
#: at import time.
RULES: dict[str, Rule] = {}

#: Diagnostics emitted outside the rule machinery (parser-level), listed
#: so ``--list-rules`` and pragma validation know every legal id.
BUILTIN_DIAGNOSTICS: dict[str, str] = {
    "PRG001": "malformed or reason-less '# repro: allow[...]' pragma",
    "SYN001": "file could not be parsed as Python",
}


def rule(
    rule_id: str, summary: str, *, deterministic_only: bool = False
) -> Callable:
    """Decorator registering a check function under ``rule_id``."""

    def deco(fn: Callable[[ModuleInfo], Iterable[Finding]]) -> Callable:
        if rule_id in RULES or rule_id in BUILTIN_DIAGNOSTICS:
            raise ValueError(f"rule id {rule_id!r} already registered")
        RULES[rule_id] = Rule(
            id=rule_id,
            summary=summary,
            check=fn,
            deterministic_only=deterministic_only,
        )
        return fn

    return deco


def all_rule_ids() -> tuple[str, ...]:
    """Every legal rule id, registry and parser diagnostics included."""
    return tuple(sorted({*RULES, *BUILTIN_DIAGNOSTICS}))


def run_rules(module: ModuleInfo) -> list[Finding]:
    """Run every applicable registered rule over one module."""
    findings: list[Finding] = []
    for rule_obj in RULES.values():
        if rule_obj.deterministic_only and not module.deterministic:
            continue
        findings.extend(rule_obj.check(module))
    return findings
