"""Finding objects: what a rule reports and how it serializes.

A :class:`Finding` is one violation of the determinism contract at one
source location.  Findings are value objects — hashable, ordered by
location — and carry a *fingerprint* (rule + path + message, no line
number) so the baseline survives unrelated edits that move code around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One determinism-contract violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Enclosing function/class, when the rule can attribute one.
    symbol: str | None = field(default=None, compare=False)

    @property
    def family(self) -> str:
        """The rule family prefix (``DET``, ``SCOPE``, ``PAR``, ...)."""
        return "".join(c for c in self.rule if c.isalpha())

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching.

        Deliberately excludes ``line``/``col``: a grandfathered finding
        stays grandfathered when unrelated edits shift it, and expires
        exactly when the offending code (or its message) changes.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line text form: ``path:line:col: RULE message``."""
        where = f"{self.path}:{self.line}:{self.col}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule} {self.message}{sym}"


@dataclass(frozen=True)
class Suppression:
    """A finding that a pragma silenced, with the pragma's stated reason."""

    finding: Finding
    reason: str

    def to_json(self) -> dict[str, Any]:
        data = self.finding.to_json()
        data["suppressed"] = True
        data["reason"] = self.reason
        return data
