"""Baseline file: grandfathered findings the gate tolerates but tracks.

The baseline maps finding *fingerprints* (rule + path + message — no
line numbers, so unrelated edits don't churn it) to counts.  CI enforces
zero findings *beyond* the baseline; stale entries (baselined findings
that no longer occur) are reported so the file shrinks monotonically —
the workflow is: grandfather with ``--write-baseline``, burn down, never
silently regrow.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.findings import Finding

BASELINE_SCHEMA = "repro.analysis-baseline/1"


class BaselineError(ValueError):
    """The baseline file exists but is not usable."""


def load_baseline(path: str | Path) -> dict[str, int]:
    """Load fingerprint counts from ``path``.

    Raises :class:`BaselineError` on malformed content; a missing file is
    the caller's concern (an explicit ``--baseline`` that does not exist
    is an error, the default location is optional).
    """
    raw = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path}: expected schema {BASELINE_SCHEMA!r}"
        )
    entries = doc.get("findings")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    counts: Counter[str] = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path}: entries must be objects")
        try:
            fingerprint = (
                f"{entry['rule']}::{entry['path']}::{entry['message']}"
            )
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"baseline {path}: entry missing rule/path/message"
            ) from exc
        counts[fingerprint] += count
    return dict(counts)


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline at ``path``."""
    counts: Counter[str] = Counter(f.fingerprint for f in findings)
    by_fingerprint: dict[str, Finding] = {}
    for finding in findings:
        by_fingerprint.setdefault(finding.fingerprint, finding)
    entries = [
        {
            "rule": by_fingerprint[fp].rule,
            "path": by_fingerprint[fp].path,
            "message": by_fingerprint[fp].message,
            "count": counts[fp],
        }
        for fp in sorted(counts)
    ]
    doc = {"schema": BASELINE_SCHEMA, "findings": entries}
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@dataclass
class BaselineMatch:
    """Result of filtering findings through a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: Fingerprints present in the baseline but absent from the run —
    #: fixed findings whose entries should now be deleted.
    stale: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "new": [f.to_json() for f in self.new],
            "baselined": [f.to_json() for f in self.baselined],
            "stale": sorted(self.stale),
        }


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int]
) -> BaselineMatch:
    """Split ``findings`` into new vs baselined, and spot stale entries.

    Counts matter: if the baseline grandfathers two occurrences of a
    fingerprint and a third appears, the third is *new*.
    """
    remaining = dict(baseline)
    match = BaselineMatch()
    for finding in sorted(findings):
        budget = remaining.get(finding.fingerprint, 0)
        if budget > 0:
            remaining[finding.fingerprint] = budget - 1
            match.baselined.append(finding)
        else:
            match.new.append(finding)
    match.stale = sorted(
        fp for fp, budget in remaining.items() if budget > 0
    )
    return match
