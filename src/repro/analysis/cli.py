"""``python -m repro.analysis`` — the determinism-contract gate.

Exit codes: ``0`` clean (no findings beyond the baseline), ``1`` new
findings (or stale baseline entries — the baseline must shrink when code
is fixed), ``2`` bad arguments (missing targets, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import ANALYSIS_SCHEMA, analyze_paths
from repro.analysis.registry import BUILTIN_DIAGNOSTICS, RULES

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analyzer enforcing the determinism contract: DET "
            "(nondeterminism sources), SCOPE (timing fields in "
            "deterministic payloads), PAR (fork/pipe safety), MSG "
            "(metered message plane)."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="files or directories to analyze",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the report to this file (any format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id with its summary and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule_id in sorted({*RULES, *BUILTIN_DIAGNOSTICS}):
        summary = (
            RULES[rule_id].summary
            if rule_id in RULES
            else BUILTIN_DIAGNOSTICS[rule_id]
        )
        lines.append(f"{rule_id}  {summary}")
    return "\n".join(lines)


def _render_text(report: dict[str, Any]) -> str:
    lines: list[str] = []
    for finding in report["findings"]:
        sym = f" [{finding['symbol']}]" if finding.get("symbol") else ""
        lines.append(
            f"{finding['path']}:{finding['line']}:{finding['col']}: "
            f"{finding['rule']} {finding['message']}{sym}"
        )
    for fingerprint in report["baseline"]["stale"]:
        lines.append(f"stale baseline entry: {fingerprint}")
    summary = (
        f"{len(report['findings'])} finding(s), "
        f"{report['counts']['baselined']} baselined, "
        f"{report['counts']['suppressed']} suppressed, "
        f"{len(report['baseline']['stale'])} stale baseline entr(y/ies) "
        f"in {report['counts']['files']} file(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.targets:
        parser.error("at least one file or directory target is required")

    try:
        result = analyze_paths(args.targets)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline or DEFAULT_BASELINE)
    if args.write_baseline:
        save_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline: dict[str, int] = {}
    if not args.no_baseline:
        if args.baseline is not None and not baseline_path.is_file():
            print(
                f"error: baseline {baseline_path} does not exist",
                file=sys.stderr,
            )
            return 2
        if baseline_path.is_file():
            try:
                baseline = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

    match = apply_baseline(result.findings, baseline)
    report: dict[str, Any] = {
        "schema": ANALYSIS_SCHEMA,
        "findings": [f.to_json() for f in match.new],
        "baseline": {
            "path": baseline_path.as_posix() if baseline else None,
            "baselined": [f.to_json() for f in match.baselined],
            "stale": match.stale,
        },
        "suppressions": [s.to_json() for s in result.suppressions],
        "counts": {
            "files": len(result.files),
            "findings": len(match.new),
            "baselined": len(match.baselined),
            "suppressed": len(result.suppressions),
            "stale": len(match.stale),
        },
    }

    if args.format == "json":
        rendered = json.dumps(report, indent=2, sort_keys=True)
    else:
        rendered = _render_text(report)
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")

    return 1 if (match.new or match.stale) else 0
