"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def walk_with_symbol(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, str | None]]:
    """Yield every node with its enclosing ``Class.function`` symbol.

    The symbol is the dotted chain of enclosing ``ClassDef`` /
    ``FunctionDef`` names (``None`` at module top level), used to label
    findings so a report line reads like a traceback frame.
    """

    def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator:
        symbol = ".".join(stack) if stack else None
        yield node, symbol
        child_stack = stack
        if isinstance(
            node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            child_stack = stack + (node.name,)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, child_stack)

    yield from visit(tree, ())


def terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a ``Name``/``Attribute`` chain.

    ``conn.send`` -> ``send``; ``self._pool.workers`` -> ``workers``;
    anything else (subscripts, calls) -> ``None``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> str | None:
    """Full dotted form of a ``Name``/``Attribute`` chain, if pure.

    ``time.perf_counter`` -> ``"time.perf_counter"``; chains that pass
    through calls or subscripts -> ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(node: ast.AST) -> str | None:
    """For a ``Call``, the called function's terminal name, else ``None``."""
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    return None


def names_in(node: ast.AST) -> set[str]:
    """Every bare ``Name`` identifier appearing under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def string_constants_in(node: ast.AST) -> set[str]:
    """Every string literal appearing under ``node``."""
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def is_self_attribute(node: ast.AST) -> bool:
    """Whether ``node`` is an ``self.x`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )
